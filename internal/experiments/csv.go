package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"skyfaas/internal/cpu"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

// This file emits each experiment's regenerated figure data as CSV, the
// machine-readable counterpart of the Render methods ("all source code and
// data sets are available" — we make the datasets real files).

func writeCSVFile(dir, name string, t *tablefmt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: csv dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

var awsKinds = []cpu.Kind{cpu.Xeon25, cpu.Xeon29, cpu.Xeon30, cpu.EPYC}

// WriteCSV emits fig3_sleep_sweep.csv and fig4_saturation.csv.
func (r EX1Result) WriteCSV(dir string) error {
	sweep := tablefmt.New("sleep_ms", "memory_mb", "unique_fis", "cost_usd")
	for _, pt := range r.Sweep {
		sweep.Row(pt.Sleep.Milliseconds(), pt.MemoryMB, pt.UniqueFIs, pt.CostUSD)
	}
	if err := writeCSVFile(dir, "fig3_sleep_sweep.csv", sweep); err != nil {
		return err
	}
	sat := tablefmt.New("account", "poll", "new_fis", "failed", "fail_frac")
	for i, pr := range r.FirstAccount {
		sat.Row("a", i+1, pr.NewFIs, pr.Failed, pr.FailFrac())
	}
	for i, pr := range r.SecondAccount {
		sat.Row("b", i+1, len(pr.Reports), pr.Failed, pr.FailFrac())
	}
	return writeCSVFile(dir, "fig4_saturation.csv", sat)
}

// WriteCSV emits fig2_global_characterization.csv.
func (r EX2Result) WriteCSV(dir string) error {
	header := []string{"region", "provider", "samples", "cost_usd"}
	for _, k := range cpu.Kinds() {
		header = append(header, "share_"+k.String())
	}
	t := tablefmt.New(header...)
	for _, rc := range r.Regions {
		row := []any{rc.Region, rc.Provider.String(), rc.Samples, rc.CostUSD}
		for _, k := range cpu.Kinds() {
			row = append(row, rc.Dist.Share(k))
		}
		t.Row(row...)
	}
	return writeCSVFile(dir, "fig2_global_characterization.csv", t)
}

// WriteCSV emits fig5_progressive_sampling.csv (one row per zone per poll).
func (r EX3Result) WriteCSV(dir string) error {
	t := tablefmt.New("zone", "poll", "cumulative_fis", "ape_pct")
	for _, z := range r.Zones {
		for i, ape := range z.APEByPoll {
			t.Row(z.AZ, i+1, z.FIsByPoll[i], ape)
		}
	}
	return writeCSVFile(dir, "fig5_progressive_sampling.csv", t)
}

// WriteCSV emits fig6_polls_to_accuracy.csv, fig7_temporal_degradation.csv
// and fig8_hourly_variation.csv.
func (r EX4Result) WriteCSV(dir string) error {
	t6 := tablefmt.New("zone", "round", "polls_to_95", "fis_to_95", "cost_usd")
	t7 := tablefmt.New("zone", "round", "ape_vs_day1_pct")
	for _, az := range r.Zones {
		for _, round := range r.ByZone[az] {
			t6.Row(az, round.Round+1, round.PollsTo95, round.FIsTo95, round.CostUSD)
			t7.Row(az, round.Round+1, round.APEVsDay1)
		}
	}
	if err := writeCSVFile(dir, "fig6_polls_to_accuracy.csv", t6); err != nil {
		return err
	}
	if err := writeCSVFile(dir, "fig7_temporal_degradation.csv", t7); err != nil {
		return err
	}
	t8 := tablefmt.New("hour", "ape_vs_hour0_pct")
	for i, v := range r.HourlyAPE {
		t8.Row(i, v)
	}
	return writeCSVFile(dir, "fig8_hourly_variation.csv", t8)
}

// WriteCSV emits fig9_cpu_performance.csv, fig10_zipper_retry.csv,
// fig11_region_hopping.csv and headline_hybrid_savings.csv.
func (r EX5Result) WriteCSV(dir string) error {
	ids := make([]workload.ID, 0, len(r.NormalizedPerf))
	for w := range r.NormalizedPerf {
		ids = append(ids, w)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	t9 := tablefmt.New("workload", "cpu", "runtime_vs_2_5ghz")
	for _, w := range ids {
		for _, k := range awsKinds {
			if v, ok := r.NormalizedPerf[w][k]; ok {
				t9.Row(w.String(), k.String(), v)
			}
		}
	}
	if err := writeCSVFile(dir, "fig9_cpu_performance.csv", t9); err != nil {
		return err
	}

	if len(r.ZipperFocusFastest.Days) > 0 {
		t10 := tablefmt.New("day", "baseline_usd", "retry_slow_usd", "focus_fastest_usd", "focus_retry_frac")
		for i := range r.ZipperFocusFastest.Days {
			t10.Row(i+1,
				r.ZipperFocusFastest.Baseline[i].CostUSD,
				r.ZipperRetrySlow.Days[i].CostUSD,
				r.ZipperFocusFastest.Days[i].CostUSD,
				r.ZipperFocusFastest.Days[i].RetryFrac)
		}
		if err := writeCSVFile(dir, "fig10_zipper_retry.csv", t10); err != nil {
			return err
		}
	}

	if len(r.LogRegHybrid.Days) > 0 {
		t11 := tablefmt.New("day", "baseline_usd", "hybrid_usd", "zone")
		for i := range r.LogRegHybrid.Days {
			t11.Row(i+1, r.LogRegHybrid.Baseline[i].CostUSD, r.LogRegHybrid.Days[i].CostUSD, r.LogRegHybrid.Days[i].AZ)
		}
		if err := writeCSVFile(dir, "fig11_region_hopping.csv", t11); err != nil {
			return err
		}
	}

	th := tablefmt.New("workload", "hybrid_cumulative_savings")
	for _, w := range ids {
		if s, ok := r.HybridByWorkload[w]; ok {
			th.Row(w.String(), s.Cumulative())
		}
	}
	return writeCSVFile(dir, "headline_hybrid_savings.csv", th)
}
