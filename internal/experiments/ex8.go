package experiments

import (
	"errors"
	"fmt"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/load"
	"skyfaas/internal/rng"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

// EX-8 — the throughput/latency frontier under overload, with and without
// admission control. A single zone with a deliberately small concurrency
// quota is driven by an open-loop arrival schedule swept from well under to
// well past the gate's estimated capacity. The no-admission arm does what
// naive clients do: retry throttles with exponential backoff, which under
// sustained overload turns into a retry storm — served latency inflates
// with accumulated backoffs and the excess eventually burns its whole
// attempt budget and errors out. The admission arm consults the
// characterization-seeded gate first: excess arrivals are shed immediately
// (the HTTP layer's typed 429), admitted work runs against a capped
// concurrency that never reaches the quota, and the served-latency tail
// stays flat while goodput holds at capacity.

// EX8NoAdmission and EX8Admission label the two arms.
const (
	EX8NoAdmission = "no-admission"
	EX8Admission   = "admission"
)

// EX8Config parameterizes EX-8.
type EX8Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// Zone is the single zone under load (default us-west-1a).
	Zone string
	// Workload under test (default sha1_hash: CPU-bound, ~1s service time,
	// so a small quota saturates at a low, easily swept rate).
	Workload workload.ID
	// Quota is the per-account concurrent execution limit — the scarce
	// resource overload contends for (default 60).
	Quota int
	// Duration is the measured load span per cell (default 30s virtual).
	Duration time.Duration
	// Multiples are the offered-rate sweep points as fractions of the
	// gate's estimated capacity (default 0.5×–3×).
	Multiples []float64
	// InitPolls is the characterization depth that seeds the gate's
	// service-time estimates (default 2).
	InitPolls int
	// ProfileRuns trains the perf model before the gate is seeded and
	// doubles as warmup for the zone's instance pool (default 240).
	ProfileRuns int
	// Retry is the client's transient-failure policy; it only matters in
	// the no-admission arm, where throttles are retried (default 6
	// attempts, 50ms base backoff, doubling).
	Retry faas.RetryPolicy
	// Sampler overrides the polling configuration. The default is scaled
	// to fit the small quota so characterization itself isn't throttled
	// into vacuity.
	Sampler sampler.Config
}

func (c EX8Config) withDefaults() EX8Config {
	if c.Zone == "" {
		c.Zone = "us-west-1a"
	}
	if c.Workload == 0 {
		c.Workload = workload.Sha1Hash
	}
	if c.Quota == 0 {
		c.Quota = 60
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if len(c.Multiples) == 0 {
		c.Multiples = []float64{0.5, 1, 1.5, 2, 2.5, 3}
	}
	if c.InitPolls == 0 {
		c.InitPolls = 2
	}
	if c.ProfileRuns == 0 {
		c.ProfileRuns = 240
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = faas.RetryPolicy{MaxAttempts: 6, BaseBackoff: 50 * time.Millisecond}
	}
	if c.Sampler.Endpoints == 0 {
		c.Sampler = sampler.Config{
			Endpoints: 40, PollSize: 50, Branch: 7,
			InterPollPause: 500 * time.Millisecond,
		}
	}
	return c
}

// Reduced returns a benchmark-scale EX-8.
func (c EX8Config) Reduced() EX8Config {
	c = c.withDefaults()
	c.Quota = 30
	c.Duration = 12 * time.Second
	c.Multiples = []float64{0.5, 1, 2, 3}
	c.ProfileRuns = 120
	return c
}

// EX8Cell is one (arm, offered rate) measurement.
type EX8Cell struct {
	Arm string
	// Multiple is the offered rate as a fraction of estimated capacity.
	Multiple float64
	// CapacityRPS is the gate's capacity estimate in this cell's world;
	// determinism makes it identical across cells, and RunEX8 checks that.
	CapacityRPS float64
	// Report is the load digest: goodput, shed/error breakdown, latency
	// quantiles of served requests.
	Report load.Report
}

// EX8Result carries the frontier: cells in (arm, multiple) sweep order.
type EX8Result struct {
	Workload workload.ID
	Zone     string
	Quota    int
	// CapacityRPS is the admission gate's estimated per-function capacity
	// that the sweep multiples scale.
	CapacityRPS float64
	Cells       []EX8Cell
}

// Cell returns the named arm's measurement at the given multiple.
func (r EX8Result) Cell(arm string, multiple float64) (EX8Cell, bool) {
	for _, c := range r.Cells {
		if c.Arm == arm && c.Multiple == multiple {
			return c, true
		}
	}
	return EX8Cell{}, false
}

// RunEX8 executes EX-8.
func RunEX8(cfg EX8Config) (EX8Result, error) {
	cfg = cfg.withDefaults()
	res := EX8Result{Workload: cfg.Workload, Zone: cfg.Zone, Quota: cfg.Quota}
	for _, arm := range []string{EX8NoAdmission, EX8Admission} {
		for _, m := range cfg.Multiples {
			cell, err := runEX8Cell(cfg, arm, m)
			if err != nil {
				return EX8Result{}, fmt.Errorf("ex8: %s %gx: %w", arm, m, err)
			}
			if res.CapacityRPS == 0 {
				res.CapacityRPS = cell.CapacityRPS
			} else if res.CapacityRPS != cell.CapacityRPS {
				// Same seed, same setup — a drifting estimate means the cell
				// worlds diverged, which would invalidate the comparison.
				return EX8Result{}, fmt.Errorf("ex8: capacity estimate drifted across cells: %v vs %v",
					res.CapacityRPS, cell.CapacityRPS)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// runEX8Cell measures one arm at one offered rate in a fresh world:
// identical seed, identical characterization and warmup — only whether the
// admission gate is consulted differs.
func runEX8Cell(cfg EX8Config, arm string, multiple float64) (EX8Cell, error) {
	rt, err := core.New(core.Config{
		Seed:       cfg.Seed,
		Epoch:      defaultEpoch,
		SamplerCfg: cfg.Sampler,
		CloudOpts:  cloudsim.Options{Quota: cfg.Quota, HorizonDays: 2},
		SkipMesh:   true,
		Shards:     cfg.Shards,
	})
	if err != nil {
		return EX8Cell{}, err
	}
	cell := EX8Cell{Arm: arm, Multiple: multiple}
	gateOn := arm == EX8Admission
	err = rt.Do(func(p *sim.Proc) error {
		// Characterize the zone and train the perf model, then seed the gate
		// from both — the same estimate pipeline skyd uses. The gate is built
		// in every cell so the capacity estimate (and hence the offered rate)
		// is byte-identical across arms; the no-admission arm just never
		// consults it.
		if _, err := rt.Refresh(p, []string{cfg.Zone}, cfg.InitPolls); err != nil {
			return err
		}
		if _, err := rt.ProfileWorkloads(p, []workload.ID{cfg.Workload}, []string{cfg.Zone}, cfg.ProfileRuns); err != nil {
			return err
		}
		gate, err := rt.EnableAdmission(admission.Config{})
		if err != nil {
			return err
		}
		cell.CapacityRPS = gate.CapacityRPS(cfg.Workload)
		if cell.CapacityRPS <= 0 {
			return fmt.Errorf("no capacity estimate for %s", cfg.Workload)
		}

		ep, ok := rt.Mesh().Lookup(cfg.Zone, 4096, cpu.X86)
		if !ok {
			return fmt.Errorf("no mesh endpoint in %s", cfg.Zone)
		}
		offered := multiple * cell.CapacityRPS
		sched := load.Schedule{Pattern: load.Constant, PeakRPS: offered, Duration: cfg.Duration}
		if err := sched.Validate(); err != nil {
			return err
		}
		arrivals := sched.Arrivals(rng.New(cfg.Seed).Split("ex8/arrivals"))
		if len(arrivals) == 0 {
			return errors.New("empty arrival schedule")
		}

		env := rt.Env()
		client := rt.Client()
		rec := load.NewRecorder()
		start := env.Now()
		remaining := len(arrivals)
		drained := sim.NewEvent(env)
		finish := func() {
			if remaining--; remaining == 0 {
				drained.Trigger(nil)
			}
		}
		spec := faas.InvokeSpec{
			Call: faas.Call{
				AZ:       cfg.Zone,
				Function: ep.Function,
				Work:     cloudsim.WorkBehavior{Workload: cfg.Workload},
			},
			Retry: cfg.Retry,
		}
		for _, at := range arrivals {
			env.Schedule(at, func() {
				rec.Begin()
				var ticket admission.Ticket
				if gateOn {
					tk, admitErr := gate.Admit(env.Now(), cfg.Workload, 1)
					if admitErr != nil {
						var shed *admission.ShedError
						if errors.As(admitErr, &shed) {
							rec.RecordRetryAfter(shed.RetryAfter)
						}
						// Shedding is a local decision: its latency is the
						// gate check itself, effectively zero.
						rec.Record(load.Shed, 0)
						finish()
						return
					}
					ticket = tk
				}
				sent := env.Now()
				env.Go("ex8-req", func(rp *sim.Proc) error {
					resp := client.Do(rp, spec)
					end := env.Now()
					if gateOn {
						gate.Done(ticket, end, resp.BilledMS, resp.OK())
					}
					latMS := float64(end.Sub(sent)) / float64(time.Millisecond)
					if resp.OK() {
						rec.Record(load.OK, latMS)
					} else {
						rec.Record(load.Errored, latMS)
					}
					finish()
					return nil
				})
			})
		}
		p.Wait(drained)
		cell.Report = rec.Report(offered, env.Now().Sub(start))
		return nil
	})
	if err != nil {
		return EX8Cell{}, err
	}
	return cell, nil
}

// Render produces the frontier report.
func (r EX8Result) Render() string {
	out := fmt.Sprintf("EX-8 — throughput/latency frontier under overload (%s in %s, quota %d, est. capacity %.1f rps)\n\n",
		r.Workload, r.Zone, r.Quota, r.CapacityRPS)
	t := tablefmt.New("arm", "xcap", "offered", "goodput", "served", "shed", "errors", "p50 ms", "p99 ms")
	for _, c := range r.Cells {
		rep := c.Report
		t.Row(c.Arm, fmt.Sprintf("%.1fx", c.Multiple),
			fmt.Sprintf("%.1f", rep.OfferedRPS), fmt.Sprintf("%.1f", rep.GoodputRPS),
			rep.OK, fmt.Sprintf("%d (%s)", rep.Shed, tablefmt.Pct(rep.ShedRate)),
			fmt.Sprintf("%d (%s)", rep.Errors, tablefmt.Pct(rep.ErrorRate)),
			fmt.Sprintf("%.0f", rep.Latency.P50), fmt.Sprintf("%.0f", rep.Latency.P99))
	}
	out += t.String()
	naive, okN := r.Cell(EX8NoAdmission, 2)
	gated, okG := r.Cell(EX8Admission, 2)
	if okN && okG && gated.Report.Latency.P99 > 0 {
		out += fmt.Sprintf("\nheadline: at 2x capacity the gate shed %s of arrivals and held served p99 at %.0f ms; the retry-storm arm reached %.0f ms (%.1fx) with %s hard errors\n",
			tablefmt.Pct(gated.Report.ShedRate), gated.Report.Latency.P99,
			naive.Report.Latency.P99, naive.Report.Latency.P99/gated.Report.Latency.P99,
			tablefmt.Pct(naive.Report.ErrorRate))
	}
	return out
}

// WriteCSV writes the frontier table as one dataset.
func (r EX8Result) WriteCSV(dir string) error {
	t := tablefmt.New("arm", "multiple", "offered_rps", "goodput_rps", "achieved_rps",
		"requests", "ok", "shed", "errors", "p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_inflight")
	for _, c := range r.Cells {
		rep := c.Report
		t.Row(c.Arm, c.Multiple, rep.OfferedRPS, rep.GoodputRPS, rep.AchievedRPS,
			rep.Requests, rep.OK, rep.Shed, rep.Errors,
			rep.Latency.P50, rep.Latency.P90, rep.Latency.P95, rep.Latency.P99, rep.MaxInFlight)
	}
	return writeCSVFile(dir, "ex8_frontier.csv", t)
}
