package experiments

import (
	"errors"
	"fmt"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/load"
	"skyfaas/internal/rng"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/tenant"
	"skyfaas/internal/workload"
)

// EX-10 — multi-tenant fairness under an aggressor storm. Two tenants share
// one zone and one global admission gate: a steady tenant running at a
// modest fraction of capacity, and an aggressor firing a throttle storm
// several times over capacity. Under the global-only gate the two
// populations race for the same slots, so the aggressor's arrival-rate
// advantage translates directly into the victim's starvation — its goodput
// collapses to roughly the gate's overall admission probability. With
// per-tenant concurrency quotas layered in front (the skyd tenant
// registry's Acquire/Release governors), the aggressor saturates its own
// slot allowance and sheds there, the victim's traffic fits comfortably in
// the remainder, and its goodput and served p99 hold at the uncontended
// baseline.

// The three arms: the victim alone (baseline), both tenants with only the
// global gate, and both tenants with per-tenant quotas in front of it.
const (
	EX10Uncontended = "uncontended"
	EX10GlobalOnly  = "global-only"
	EX10PerTenant   = "per-tenant"
)

// The two tenant IDs.
const (
	EX10Victim    = "steady"
	EX10Aggressor = "storm"
)

// EX10Config parameterizes EX-10.
type EX10Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// Zone is the shared zone (default us-west-1a).
	Zone string
	// Workload both tenants run (default sha1_hash, ~1s service time).
	Workload workload.ID
	// Quota is the provider-side concurrent execution limit the global gate
	// protects (default 60; the gate's slot limit is TargetUtil x Quota).
	Quota int
	// Duration is the measured load span per cell (default 30s virtual).
	Duration time.Duration
	// VictimMultiple is the steady tenant's offered rate as a fraction of
	// the gate's estimated capacity (default 0.4).
	VictimMultiple float64
	// StormMultiple is the aggressor's offered rate as a multiple of
	// estimated capacity (default 4 — a sustained throttle storm).
	StormMultiple float64
	// VictimSlots / AggressorSlots are the per-tenant concurrency quotas in
	// the per-tenant arm. The defaults partition the gate's slot limit
	// (TargetUtil x Quota = 54): 34 slots give the victim's ~22 mean
	// in-flight comfortable headroom, 20 cap the aggressor.
	VictimSlots    int
	AggressorSlots int
	// InitPolls seeds the gate's service-time estimate (default 2).
	InitPolls int
	// ProfileRuns trains the perf model and warms the pool (default 240).
	ProfileRuns int
	// Retry is the client retry policy (default 6 attempts, 50ms base; the
	// gate keeps in-flight below the provider quota, so it rarely fires).
	Retry faas.RetryPolicy
	// Sampler overrides the polling configuration (default: EX-8's layout,
	// scaled to fit the small quota).
	Sampler sampler.Config
}

func (c EX10Config) withDefaults() EX10Config {
	if c.Zone == "" {
		c.Zone = "us-west-1a"
	}
	if c.Workload == 0 {
		c.Workload = workload.Sha1Hash
	}
	if c.Quota == 0 {
		c.Quota = 60
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.VictimMultiple == 0 {
		c.VictimMultiple = 0.4
	}
	if c.StormMultiple == 0 {
		c.StormMultiple = 4
	}
	if c.VictimSlots == 0 {
		c.VictimSlots = 34
	}
	if c.AggressorSlots == 0 {
		c.AggressorSlots = 20
	}
	if c.InitPolls == 0 {
		c.InitPolls = 2
	}
	if c.ProfileRuns == 0 {
		c.ProfileRuns = 240
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = faas.RetryPolicy{MaxAttempts: 6, BaseBackoff: 50 * time.Millisecond}
	}
	if c.Sampler.Endpoints == 0 {
		c.Sampler = sampler.Config{
			Endpoints: 40, PollSize: 50, Branch: 7,
			InterPollPause: 500 * time.Millisecond,
		}
	}
	return c
}

// Reduced returns a benchmark-scale EX-10 (the same slot partition shape
// against a 30-quota world: limit 27 = 20 victim + 7 aggressor).
func (c EX10Config) Reduced() EX10Config {
	c = c.withDefaults()
	c.Quota = 30
	c.Duration = 12 * time.Second
	c.VictimSlots = 20
	c.AggressorSlots = 7
	c.ProfileRuns = 120
	return c
}

// EX10Cell is one arm's measurement: each tenant's load digest.
type EX10Cell struct {
	Arm string
	// CapacityRPS is the gate's capacity estimate in this cell's world;
	// determinism makes it identical across cells, and RunEX10 checks that.
	CapacityRPS float64
	// Victim is the steady tenant's report; Aggressor is zero-valued in the
	// uncontended arm.
	Victim    load.Report
	Aggressor load.Report
}

// EX10Result carries the fairness comparison, cells in arm order.
type EX10Result struct {
	Workload workload.ID
	Zone     string
	Quota    int
	// CapacityRPS is the admission gate's estimated per-function capacity
	// both tenants' offered rates scale from.
	CapacityRPS    float64
	VictimSlots    int
	AggressorSlots int
	Cells          []EX10Cell
}

// Cell returns the named arm's measurement.
func (r EX10Result) Cell(arm string) (EX10Cell, bool) {
	for _, c := range r.Cells {
		if c.Arm == arm {
			return c, true
		}
	}
	return EX10Cell{}, false
}

// Retention is the victim's goodput in the named arm as a fraction of its
// uncontended baseline — the experiment's fairness headline.
func (r EX10Result) Retention(arm string) float64 {
	base, okB := r.Cell(EX10Uncontended)
	c, okC := r.Cell(arm)
	if !okB || !okC || base.Victim.GoodputRPS == 0 {
		return 0
	}
	return c.Victim.GoodputRPS / base.Victim.GoodputRPS
}

// RunEX10 executes EX-10.
func RunEX10(cfg EX10Config) (EX10Result, error) {
	cfg = cfg.withDefaults()
	res := EX10Result{
		Workload: cfg.Workload, Zone: cfg.Zone, Quota: cfg.Quota,
		VictimSlots: cfg.VictimSlots, AggressorSlots: cfg.AggressorSlots,
	}
	for _, arm := range []string{EX10Uncontended, EX10GlobalOnly, EX10PerTenant} {
		cell, err := runEX10Cell(cfg, arm)
		if err != nil {
			return EX10Result{}, fmt.Errorf("ex10: %s: %w", arm, err)
		}
		if res.CapacityRPS == 0 {
			res.CapacityRPS = cell.CapacityRPS
		} else if res.CapacityRPS != cell.CapacityRPS {
			// Same seed, same setup — a drifting estimate means the cell
			// worlds diverged, which would invalidate the comparison.
			return EX10Result{}, fmt.Errorf("ex10: capacity estimate drifted across cells: %v vs %v",
				res.CapacityRPS, cell.CapacityRPS)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// runEX10Cell measures one arm in a fresh world: identical seed, identical
// characterization and warmup — only the tenant population and whether the
// per-tenant governors run differ.
func runEX10Cell(cfg EX10Config, arm string) (EX10Cell, error) {
	rt, err := core.New(core.Config{
		Seed:       cfg.Seed,
		Epoch:      defaultEpoch,
		SamplerCfg: cfg.Sampler,
		CloudOpts:  cloudsim.Options{Quota: cfg.Quota, HorizonDays: 2},
		SkipMesh:   true,
		Shards:     cfg.Shards,
	})
	if err != nil {
		return EX10Cell{}, err
	}
	cell := EX10Cell{Arm: arm}
	err = rt.Do(func(p *sim.Proc) error {
		// The same estimate pipeline skyd uses: characterize, train the perf
		// model, seed the gate. Every arm builds the gate so the capacity
		// estimate (and hence both offered rates) is byte-identical.
		if _, err := rt.Refresh(p, []string{cfg.Zone}, cfg.InitPolls); err != nil {
			return err
		}
		if _, err := rt.ProfileWorkloads(p, []workload.ID{cfg.Workload}, []string{cfg.Zone}, cfg.ProfileRuns); err != nil {
			return err
		}
		gate, err := rt.EnableAdmission(admission.Config{})
		if err != nil {
			return err
		}
		cell.CapacityRPS = gate.CapacityRPS(cfg.Workload)
		if cell.CapacityRPS <= 0 {
			return fmt.Errorf("no capacity estimate for %s", cfg.Workload)
		}

		// The per-tenant governors, present only in the per-tenant arm. The
		// registry's explicit-now API takes virtual time, so the same seed
		// replays the quota decisions bit-identically.
		var reg *tenant.Registry
		if arm == EX10PerTenant {
			reg = tenant.NewRegistry(tenant.Config{})
			for _, t := range []tenant.Tenant{
				{ID: EX10Victim, Name: "Steady tenant", Keys: []string{"sk-steady"}, QuotaSlots: cfg.VictimSlots},
				{ID: EX10Aggressor, Name: "Aggressor", Keys: []string{"sk-storm"}, QuotaSlots: cfg.AggressorSlots},
			} {
				if err := reg.Create(t, rt.Env().Now()); err != nil {
					return err
				}
			}
		}

		ep, ok := rt.Mesh().Lookup(cfg.Zone, 4096, cpu.X86)
		if !ok {
			return fmt.Errorf("no mesh endpoint in %s", cfg.Zone)
		}
		env := rt.Env()
		client := rt.Client()
		spec := faas.InvokeSpec{
			Call: faas.Call{
				AZ:       cfg.Zone,
				Function: ep.Function,
				Work:     cloudsim.WorkBehavior{Workload: cfg.Workload},
			},
			Retry: cfg.Retry,
		}

		// Build both tenants' open-loop schedules from independent seed
		// streams so the aggressor's presence never perturbs the victim's
		// arrival times across arms.
		type population struct {
			id       string
			offered  float64
			arrivals []time.Duration
			rec      *load.Recorder
		}
		victim := &population{
			id:      EX10Victim,
			offered: cfg.VictimMultiple * cell.CapacityRPS,
			rec:     load.NewRecorder(),
		}
		pops := []*population{victim}
		if arm != EX10Uncontended {
			pops = append(pops, &population{
				id:      EX10Aggressor,
				offered: cfg.StormMultiple * cell.CapacityRPS,
				rec:     load.NewRecorder(),
			})
		}
		remaining := 0
		for _, pop := range pops {
			sched := load.Schedule{Pattern: load.Constant, PeakRPS: pop.offered, Duration: cfg.Duration}
			if err := sched.Validate(); err != nil {
				return err
			}
			pop.arrivals = sched.Arrivals(rng.New(cfg.Seed).Split("ex10/" + pop.id))
			if len(pop.arrivals) == 0 {
				return fmt.Errorf("empty arrival schedule for %s", pop.id)
			}
			remaining += len(pop.arrivals)
		}

		start := env.Now()
		drained := sim.NewEvent(env)
		finish := func() {
			if remaining--; remaining == 0 {
				drained.Trigger(nil)
			}
		}
		for _, pop := range pops {
			id, rec := pop.id, pop.rec
			for _, at := range pop.arrivals {
				env.Schedule(at, func() {
					rec.Begin()
					// Layer 1: the tenant's own quota. Shedding here never
					// touches the global gate — that isolation is the whole
					// point.
					var lease tenant.Lease
					if reg != nil {
						l, acqErr := reg.Acquire(id, 1, env.Now())
						if acqErr != nil {
							var le *tenant.LimitError
							if errors.As(acqErr, &le) {
								rec.RecordRetryAfter(le.RetryAfter)
							}
							rec.Record(load.Shed, 0)
							finish()
							return
						}
						lease = l
					}
					// Layer 2: the shared global gate.
					tk, admitErr := gate.Admit(env.Now(), cfg.Workload, 1)
					if admitErr != nil {
						if reg != nil {
							reg.Release(lease, env.Now(), 0)
						}
						var shed *admission.ShedError
						if errors.As(admitErr, &shed) {
							rec.RecordRetryAfter(shed.RetryAfter)
						}
						rec.Record(load.Shed, 0)
						finish()
						return
					}
					sent := env.Now()
					env.Go("ex10-req", func(rp *sim.Proc) error {
						resp := client.Do(rp, spec)
						end := env.Now()
						gate.Done(tk, end, resp.BilledMS, resp.OK())
						if reg != nil {
							reg.Release(lease, end, resp.CostUSD)
						}
						latMS := float64(end.Sub(sent)) / float64(time.Millisecond)
						if resp.OK() {
							rec.Record(load.OK, latMS)
						} else {
							rec.Record(load.Errored, latMS)
						}
						finish()
						return nil
					})
				})
			}
		}
		p.Wait(drained)
		elapsed := env.Now().Sub(start)
		cell.Victim = victim.rec.Report(victim.offered, elapsed)
		if arm != EX10Uncontended {
			agg := pops[1]
			cell.Aggressor = agg.rec.Report(agg.offered, elapsed)
		}
		return nil
	})
	if err != nil {
		return EX10Cell{}, err
	}
	return cell, nil
}

// Render produces the fairness report.
func (r EX10Result) Render() string {
	out := fmt.Sprintf("EX-10 — per-tenant fairness under an aggressor storm (%s in %s, quota %d, est. capacity %.1f rps, tenant slots %d/%d)\n\n",
		r.Workload, r.Zone, r.Quota, r.CapacityRPS, r.VictimSlots, r.AggressorSlots)
	t := tablefmt.New("arm", "tenant", "offered", "goodput", "retention", "shed", "errors", "p50 ms", "p99 ms")
	row := func(arm, tenantID string, rep load.Report, retention string) {
		t.Row(arm, tenantID,
			fmt.Sprintf("%.1f", rep.OfferedRPS), fmt.Sprintf("%.1f", rep.GoodputRPS), retention,
			fmt.Sprintf("%d (%s)", rep.Shed, tablefmt.Pct(rep.ShedRate)),
			rep.Errors,
			fmt.Sprintf("%.0f", rep.Latency.P50), fmt.Sprintf("%.0f", rep.Latency.P99))
	}
	for _, c := range r.Cells {
		row(c.Arm, EX10Victim, c.Victim, tablefmt.Pct(r.Retention(c.Arm)))
		if c.Arm != EX10Uncontended {
			row(c.Arm, EX10Aggressor, c.Aggressor, "-")
		}
	}
	out += t.String()
	if gOnly, ok := r.Cell(EX10GlobalOnly); ok {
		if perT, ok2 := r.Cell(EX10PerTenant); ok2 {
			out += fmt.Sprintf("\nheadline: the storm under a global-only gate starved the steady tenant to %s of its baseline goodput (p99 %.0f ms); per-tenant quotas held it at %s (p99 %.0f ms) while shedding %s of the aggressor\n",
				tablefmt.Pct(r.Retention(EX10GlobalOnly)), gOnly.Victim.Latency.P99,
				tablefmt.Pct(r.Retention(EX10PerTenant)), perT.Victim.Latency.P99,
				tablefmt.Pct(perT.Aggressor.ShedRate))
		}
	}
	return out
}

// WriteCSV writes the fairness table as one dataset.
func (r EX10Result) WriteCSV(dir string) error {
	t := tablefmt.New("arm", "tenant", "offered_rps", "goodput_rps", "achieved_rps",
		"requests", "ok", "shed", "errors", "p50_ms", "p90_ms", "p95_ms", "p99_ms",
		"mean_retry_after_ms", "retention")
	row := func(arm, tenantID string, rep load.Report, retention float64) {
		t.Row(arm, tenantID, rep.OfferedRPS, rep.GoodputRPS, rep.AchievedRPS,
			rep.Requests, rep.OK, rep.Shed, rep.Errors,
			rep.Latency.P50, rep.Latency.P90, rep.Latency.P95, rep.Latency.P99,
			rep.MeanRetryAfterMS, retention)
	}
	for _, c := range r.Cells {
		row(c.Arm, EX10Victim, c.Victim, r.Retention(c.Arm))
		if c.Arm != EX10Uncontended {
			row(c.Arm, EX10Aggressor, c.Aggressor, 0)
		}
	}
	return writeCSVFile(dir, "ex10_fairness.csv", t)
}
