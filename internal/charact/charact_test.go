package charact

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"skyfaas/internal/cpu"
)

func TestCountsBasics(t *testing.T) {
	c := make(Counts)
	c.Add(cpu.Xeon25)
	c.Add(cpu.Xeon25)
	c.Add(cpu.Xeon30)
	if c.Total() != 3 {
		t.Fatalf("total = %d", c.Total())
	}
	d := c.Dist()
	if math.Abs(d[cpu.Xeon25]-2.0/3) > 1e-12 || math.Abs(d[cpu.Xeon30]-1.0/3) > 1e-12 {
		t.Fatalf("dist = %v", d)
	}
}

func TestCountsMergeClone(t *testing.T) {
	a := Counts{cpu.Xeon25: 2}
	b := Counts{cpu.Xeon25: 1, cpu.EPYC: 3}
	cl := a.Clone()
	a.Merge(b)
	if a[cpu.Xeon25] != 3 || a[cpu.EPYC] != 3 {
		t.Fatalf("merge = %v", a)
	}
	if cl[cpu.Xeon25] != 2 || cl[cpu.EPYC] != 0 {
		t.Fatalf("clone mutated: %v", cl)
	}
}

func TestEmptyCountsDist(t *testing.T) {
	if d := (Counts{}).Dist(); len(d) != 0 {
		t.Fatalf("empty counts dist = %v", d)
	}
}

func TestAPEKnownValues(t *testing.T) {
	tests := []struct {
		name     string
		est, ref Dist
		want     float64
	}{
		{"identical", Dist{cpu.Xeon25: 1}, Dist{cpu.Xeon25: 1}, 0},
		{"disjoint", Dist{cpu.Xeon25: 1}, Dist{cpu.Xeon30: 1}, 100},
		{"half", Dist{cpu.Xeon25: 0.5, cpu.Xeon30: 0.5}, Dist{cpu.Xeon25: 1}, 50},
		{"tenpoint", Dist{cpu.Xeon25: 0.6, cpu.Xeon30: 0.4}, Dist{cpu.Xeon25: 0.7, cpu.Xeon30: 0.3}, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := APE(tt.est, tt.ref); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("APE = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAPEProperties(t *testing.T) {
	mk := func(a, b, c float64) Dist {
		a, b, c = math.Abs(a), math.Abs(b), math.Abs(c)
		tot := a + b + c
		if tot == 0 {
			return Dist{cpu.Xeon25: 1}
		}
		return Dist{cpu.Xeon25: a / tot, cpu.Xeon29: b / tot, cpu.Xeon30: c / tot}
	}
	if err := quick.Check(func(a1, b1, c1, a2, b2, c2 float64) bool {
		for _, v := range []float64{a1, b1, c1, a2, b2, c2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		x, y := mk(a1, b1, c1), mk(a2, b2, c2)
		ape := APE(x, y)
		// Symmetric, bounded, zero iff equal-ish.
		return ape >= -1e-9 && ape <= 100+1e-9 && math.Abs(ape-APE(y, x)) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyClamps(t *testing.T) {
	if a := Accuracy(Dist{cpu.Xeon25: 1}, Dist{cpu.Xeon25: 1}); a != 100 {
		t.Fatalf("identical accuracy = %v", a)
	}
	if a := Accuracy(Dist{cpu.Xeon25: 1}, Dist{cpu.Xeon30: 1}); a != 0 {
		t.Fatalf("disjoint accuracy = %v", a)
	}
}

func TestDistTopAndString(t *testing.T) {
	d := Dist{cpu.Xeon25: 0.6, cpu.Xeon30: 0.4}
	top, ok := d.Top()
	if !ok || top != cpu.Xeon25 {
		t.Fatalf("top = %v ok=%v", top, ok)
	}
	if _, ok := (Dist{}).Top(); ok {
		t.Fatal("empty dist has a top")
	}
	if s := d.String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestProgressiveAPEConverges(t *testing.T) {
	ref := Dist{cpu.Xeon25: 0.5, cpu.Xeon30: 0.5}
	perPoll := []Counts{
		{cpu.Xeon25: 10},               // all one kind: APE 50
		{cpu.Xeon30: 10},               // now balanced: APE 0
		{cpu.Xeon25: 5, cpu.Xeon30: 5}, // stays balanced
	}
	apes := ProgressiveAPE(perPoll, ref)
	if len(apes) != 3 {
		t.Fatalf("len = %d", len(apes))
	}
	if math.Abs(apes[0]-50) > 1e-9 || math.Abs(apes[1]) > 1e-9 || math.Abs(apes[2]) > 1e-9 {
		t.Fatalf("apes = %v", apes)
	}
}

func TestPollsToAccuracy(t *testing.T) {
	apes := []float64{30, 12, 4, 0.5}
	if got := PollsToAccuracy(apes, 95); got != 3 {
		t.Fatalf("polls to 95%% = %d, want 3", got)
	}
	if got := PollsToAccuracy(apes, 99); got != 4 {
		t.Fatalf("polls to 99%% = %d, want 4", got)
	}
	if got := PollsToAccuracy(apes, 99.9); got != -1 {
		t.Fatalf("unreachable target = %d, want -1", got)
	}
	if got := PollsToAccuracy(apes, 70); got != 1 {
		t.Fatalf("polls to 70%% = %d, want 1", got)
	}
}

func TestStabilitySeries(t *testing.T) {
	base := Dist{cpu.Xeon25: 1}
	series := StabilitySeries(base, []Dist{
		{cpu.Xeon25: 1},
		{cpu.Xeon25: 0.9, cpu.Xeon30: 0.1},
		{cpu.Xeon30: 1},
	})
	want := []float64{0, 10, 100}
	for i := range want {
		if math.Abs(series[i]-want[i]) > 1e-9 {
			t.Fatalf("series = %v", series)
		}
	}
	if Stable(series, 10.5) {
		t.Error("unstable series reported stable")
	}
	if !Stable(series[:2], 10.5) {
		t.Error("stable prefix reported unstable")
	}
}

func TestStoreTTL(t *testing.T) {
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	s := NewStore(24 * time.Hour)
	ch := Characterization{
		AZ:      "us-west-1a",
		Taken:   now,
		Polls:   6,
		Samples: 5400,
		Counts:  Counts{cpu.Xeon25: 5400},
		CostUSD: 0.04,
	}
	s.Put(ch)
	if _, ok := s.Get("us-west-1a", now.Add(12*time.Hour)); !ok {
		t.Fatal("fresh characterization missing")
	}
	if _, ok := s.Get("us-west-1a", now.Add(25*time.Hour)); ok {
		t.Fatal("stale characterization returned")
	}
	if _, ok := s.Get("ghost", now); ok {
		t.Fatal("unknown zone returned")
	}
	if zones := s.Zones(); len(zones) != 1 || zones[0] != "us-west-1a" {
		t.Fatalf("zones = %v", zones)
	}
	if c := s.TotalCost(); math.Abs(c-0.04) > 1e-12 {
		t.Fatalf("total cost = %v", c)
	}
}

func TestStoreNoTTL(t *testing.T) {
	s := NewStore(0)
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	s.Put(Characterization{AZ: "z", Taken: now})
	if _, ok := s.Get("z", now.AddDate(1, 0, 0)); !ok {
		t.Fatal("ttl=0 should never expire")
	}
}

func TestCharacterizationAge(t *testing.T) {
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	ch := Characterization{Taken: now}
	if got := ch.Age(now.Add(3 * time.Hour)); got != 3*time.Hour {
		t.Fatalf("age = %v", got)
	}
}
