package charact

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"skyfaas/internal/cpu"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	now := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	s := NewStore(24 * time.Hour)
	s.Put(Characterization{
		AZ: "us-west-1a", Taken: now, Polls: 24, Samples: 23936, CostUSD: 0.2254,
		Counts: Counts{cpu.Xeon25: 12000, cpu.Xeon30: 7000, cpu.Xeon29: 3600, cpu.EPYC: 1336},
	})
	s.Put(Characterization{
		AZ: "eu-north-1a", Taken: now.Add(-time.Hour), Polls: 6, Samples: 4992, CostUSD: 0.0468,
		Counts: Counts{cpu.Xeon25: 3700, cpu.Xeon30: 1292},
	})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Wire format keys CPUs by stable model strings, not enum ints.
	if !strings.Contains(buf.String(), "Intel(R) Xeon(R) Processor @ 2.50GHz") {
		t.Errorf("serialized form lacks model strings:\n%s", buf.String())
	}

	back, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, az := range []string{"us-west-1a", "eu-north-1a"} {
		orig, _ := s.Get(az, now)
		got, ok := back.Get(az, now)
		if !ok {
			t.Fatalf("%s missing after load", az)
		}
		if got.Polls != orig.Polls || got.Samples != orig.Samples || got.CostUSD != orig.CostUSD {
			t.Errorf("%s metadata mismatch: %+v vs %+v", az, got, orig)
		}
		if !got.Taken.Equal(orig.Taken) {
			t.Errorf("%s taken mismatch", az)
		}
		if ape := APE(got.Dist(), orig.Dist()); ape > 1e-9 {
			t.Errorf("%s distribution changed: APE %v", az, ape)
		}
	}
	// TTL survives: entries expire on the loaded store too.
	if _, ok := back.Get("us-west-1a", now.Add(25*time.Hour)); ok {
		t.Error("loaded store lost its TTL")
	}
}

func TestLoadStoreRejectsGarbage(t *testing.T) {
	if _, err := LoadStore(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := LoadStore(strings.NewReader(
		`{"ttlSeconds":60,"zones":[{"az":"z","counts":{"Mystery CPU":5}}]}`)); err == nil {
		t.Fatal("unknown CPU model accepted")
	}
}

func TestSaveEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore(0).Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Zones()) != 0 {
		t.Fatalf("zones = %v", back.Zones())
	}
}
