package charact

import (
	"time"

	"skyfaas/internal/cpu"
)

// Passive builds zone characterizations from the SAAF reports of *normal*
// workload traffic instead of dedicated polling — the paper's §4.6 future
// work ("hardware characterizations can be constructed passively as part
// of the normal function execution"). Observations are deduplicated by
// instance id and aged out of a sliding window.
type Passive struct {
	window time.Duration
	byZone map[string]*passiveZone
}

type passiveObs struct {
	at   time.Time
	fi   string
	kind cpu.Kind
}

type passiveZone struct {
	obs  []passiveObs
	seen map[string]int // fi id -> live observation count
}

// NewPassive returns a collector whose observations expire after window
// (0 means 24h).
func NewPassive(window time.Duration) *Passive {
	if window == 0 {
		window = 24 * time.Hour
	}
	return &Passive{
		window: window,
		byZone: make(map[string]*passiveZone),
	}
}

// Window returns the sliding-window length.
func (p *Passive) Window() time.Duration { return p.window }

// Observe records that an invocation at time t ran on instance fi with
// CPU kind k in zone az. Repeat observations of a live instance are
// deduplicated.
func (p *Passive) Observe(az string, t time.Time, fi string, k cpu.Kind) {
	z, ok := p.byZone[az]
	if !ok {
		z = &passiveZone{seen: make(map[string]int)}
		p.byZone[az] = z
	}
	z.expire(t.Add(-p.window))
	if z.seen[fi] > 0 {
		return // instance already counted within the window
	}
	z.seen[fi]++
	z.obs = append(z.obs, passiveObs{at: t, fi: fi, kind: k})
}

// expire drops observations older than cutoff.
func (z *passiveZone) expire(cutoff time.Time) {
	drop := 0
	for drop < len(z.obs) && z.obs[drop].at.Before(cutoff) {
		o := z.obs[drop]
		z.seen[o.fi]--
		if z.seen[o.fi] <= 0 {
			delete(z.seen, o.fi)
		}
		drop++
	}
	if drop > 0 {
		z.obs = append(z.obs[:0], z.obs[drop:]...)
	}
}

// Samples returns the live observation count for a zone at now.
func (p *Passive) Samples(az string, now time.Time) int {
	z, ok := p.byZone[az]
	if !ok {
		return 0
	}
	z.expire(now.Add(-p.window))
	return len(z.obs)
}

// Characterization derives a zone characterization from the window; ok is
// false when fewer than minSamples observations are live.
func (p *Passive) Characterization(az string, now time.Time, minSamples int) (Characterization, bool) {
	z, ok := p.byZone[az]
	if !ok {
		return Characterization{}, false
	}
	z.expire(now.Add(-p.window))
	if len(z.obs) < minSamples {
		return Characterization{}, false
	}
	counts := make(Counts)
	for _, o := range z.obs {
		counts.Add(o.kind)
	}
	return Characterization{
		AZ:      az,
		Taken:   now,
		Samples: len(z.obs),
		Counts:  counts,
		// CostUSD stays zero: that is the whole point of passive mode.
	}, true
}
