package charact

import (
	"fmt"
	"time"
)

// This file implements the zone-classification opportunity §4.4 points out:
// "stable AZs require less sampling to save on profiling costs ... while
// others may require more samples". A Classifier watches each zone's
// characterization history and recommends how often it needs re-profiling.

// ZoneClass is a zone's temporal-stability class.
type ZoneClass int

// Stability classes, from least to most sampling demand.
const (
	// ClassUnknown means too little history to classify.
	ClassUnknown ZoneClass = iota
	// ClassStable zones hold their distribution for days (sa-east-1a,
	// eu-north-1a in the paper).
	ClassStable
	// ClassModerate zones drift noticeably across days.
	ClassModerate
	// ClassVolatile zones can shift 20-50% within a day (ca-central-1a,
	// us-west-1a/b).
	ClassVolatile
)

// String returns the class label.
func (c ZoneClass) String() string {
	switch c {
	case ClassStable:
		return "stable"
	case ClassModerate:
		return "moderate"
	case ClassVolatile:
		return "volatile"
	default:
		return "unknown"
	}
}

// Classifier accumulates characterization history per zone and classifies
// each zone's volatility from consecutive-observation APE.
type Classifier struct {
	// StableAPE and VolatileAPE are the class boundaries on the mean
	// step-to-step APE (percent). Defaults: 5 and 15.
	StableAPE   float64
	VolatileAPE float64
	// MinHistory is the number of observations needed before classifying
	// (default 3).
	MinHistory int

	history map[string][]Dist
}

// NewClassifier returns a classifier with default thresholds.
func NewClassifier() *Classifier {
	return &Classifier{
		StableAPE:   5,
		VolatileAPE: 15,
		MinHistory:  3,
		history:     make(map[string][]Dist),
	}
}

// Observe appends a zone observation.
func (c *Classifier) Observe(az string, d Dist) {
	c.history[az] = append(c.history[az], d)
}

// StepAPEs returns the APE between each consecutive pair of observations.
func (c *Classifier) StepAPEs(az string) []float64 {
	h := c.history[az]
	if len(h) < 2 {
		return nil
	}
	out := make([]float64, 0, len(h)-1)
	for i := 1; i < len(h); i++ {
		out = append(out, APE(h[i], h[i-1]))
	}
	return out
}

// Classify returns the zone's stability class.
func (c *Classifier) Classify(az string) ZoneClass {
	steps := c.StepAPEs(az)
	if len(steps)+1 < c.MinHistory {
		return ClassUnknown
	}
	var sum float64
	for _, s := range steps {
		sum += s
	}
	mean := sum / float64(len(steps))
	switch {
	case mean <= c.StableAPE:
		return ClassStable
	case mean >= c.VolatileAPE:
		return ClassVolatile
	default:
		return ClassModerate
	}
}

// RecommendedInterval maps a class to a re-profiling cadence, implementing
// the paper's save-on-profiling-cost suggestion: stable zones coast on old
// characterizations, volatile zones are re-sampled daily or faster.
func (c *Classifier) RecommendedInterval(az string) time.Duration {
	switch c.Classify(az) {
	case ClassStable:
		return 7 * 24 * time.Hour
	case ClassModerate:
		return 2 * 24 * time.Hour
	case ClassVolatile:
		return 12 * time.Hour
	default:
		return 24 * time.Hour
	}
}

// Report renders one line per classified zone.
func (c *Classifier) Report() string {
	out := ""
	for az := range c.history {
		out += fmt.Sprintf("%s: %s (refresh every %s)\n",
			az, c.Classify(az), c.RecommendedInterval(az))
	}
	return out
}

// Zones returns the observed zone names (unordered).
func (c *Classifier) Zones() []string {
	out := make([]string, 0, len(c.history))
	for az := range c.history {
		out = append(out, az)
	}
	return out
}
