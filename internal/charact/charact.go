// Package charact turns raw infrastructure observations into CPU
// characterizations: per-zone hardware distributions, their error against a
// reference, progressive-sampling accuracy curves, and temporal-stability
// analysis (RQ-2).
package charact

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skyfaas/internal/cpu"
)

// Dist is a CPU distribution: each catalogued kind's share, summing to ~1.
type Dist map[cpu.Kind]float64

// Counts tallies observed function instances by CPU kind.
type Counts map[cpu.Kind]int

// Add records one observation.
func (c Counts) Add(k cpu.Kind) { c[k]++ }

// Merge folds other into c.
func (c Counts) Merge(other Counts) {
	for k, n := range other {
		c[k] += n
	}
}

// Clone returns an independent copy.
func (c Counts) Clone() Counts {
	out := make(Counts, len(c))
	for k, n := range c {
		out[k] = n
	}
	return out
}

// Total returns the number of observations.
func (c Counts) Total() int {
	var t int
	for _, n := range c {
		t += n
	}
	return t
}

// Dist normalizes the counts into a distribution (empty counts yield an
// empty distribution).
func (c Counts) Dist() Dist {
	total := c.Total()
	if total == 0 {
		return Dist{}
	}
	d := make(Dist, len(c))
	for k, n := range c {
		d[k] = float64(n) / float64(total)
	}
	return d
}

// Share returns kind k's share (0 when absent).
func (d Dist) Share(k cpu.Kind) float64 { return d[k] }

// Top returns the most prevalent kind; ok is false for an empty
// distribution. Ties break toward the lower catalogue ordinal for
// determinism.
func (d Dist) Top() (cpu.Kind, bool) {
	var best cpu.Kind
	bestShare := -1.0
	for _, k := range cpu.Kinds() {
		if s, present := d[k]; present && s > bestShare {
			best, bestShare = k, s
		}
	}
	return best, bestShare >= 0
}

// String renders the distribution compactly in catalogue order.
func (d Dist) String() string {
	var b strings.Builder
	first := true
	for _, k := range cpu.Kinds() {
		s, ok := d[k]
		if !ok || s == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s:%.1f%%", k, s*100)
		first = false
	}
	return b.String()
}

// APE is the absolute percentage error between an estimate and a reference
// distribution: the total-variation distance expressed in percent
// (0 = identical, 100 = disjoint). Accuracy = 100 − APE.
func APE(est, ref Dist) float64 {
	// Sum in catalog order so floating-point rounding is reproducible.
	var l1 float64
	for _, k := range cpu.Kinds() {
		diff := est[k] - ref[k]
		if diff < 0 {
			diff = -diff
		}
		l1 += diff
	}
	return 100 * l1 / 2
}

// Accuracy returns 100 − APE, clamped to [0, 100].
func Accuracy(est, ref Dist) float64 {
	a := 100 - APE(est, ref)
	if a < 0 {
		return 0
	}
	return a
}

// Characterization is one zone's hardware profile at a point in time.
type Characterization struct {
	AZ      string
	Taken   time.Time
	Polls   int
	Samples int // unique function instances observed
	Counts  Counts
	CostUSD float64
}

// Dist returns the characterized distribution.
func (ch Characterization) Dist() Dist { return ch.Counts.Dist() }

// Age returns how stale the characterization is at now.
func (ch Characterization) Age(now time.Time) time.Duration {
	return now.Sub(ch.Taken)
}

// ---------------------------------------------------------------------------
// Progressive sampling

// ProgressiveAPE returns the APE of each cumulative poll prefix against the
// reference distribution: element i is the error after polls 0..i.
func ProgressiveAPE(perPoll []Counts, ref Dist) []float64 {
	out := make([]float64, len(perPoll))
	cum := make(Counts)
	for i, c := range perPoll {
		cum.Merge(c)
		out[i] = APE(cum.Dist(), ref)
	}
	return out
}

// PollsToAccuracy returns the 1-based index of the first poll prefix whose
// accuracy reaches target percent, or -1 if none does.
func PollsToAccuracy(apes []float64, target float64) int {
	for i, ape := range apes {
		if 100-ape >= target {
			return i + 1
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Temporal stability

// StabilitySeries scores how a zone's distribution wanders from a baseline:
// element i is APE(dists[i], baseline).
func StabilitySeries(baseline Dist, dists []Dist) []float64 {
	out := make([]float64, len(dists))
	for i, d := range dists {
		out[i] = APE(d, baseline)
	}
	return out
}

// Stable reports whether every observation stays within tolAPE of the
// baseline.
func Stable(series []float64, tolAPE float64) bool {
	for _, v := range series {
		if v > tolAPE {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Store

// Store keeps the freshest characterization per zone with a usable
// lifespan, so routing can decide when a zone must be re-profiled.
type Store struct {
	ttl time.Duration
	by  map[string]Characterization
}

// NewStore returns a store whose entries expire after ttl (0 = never).
func NewStore(ttl time.Duration) *Store {
	return &Store{ttl: ttl, by: make(map[string]Characterization)}
}

// Put records ch as the zone's current characterization.
func (s *Store) Put(ch Characterization) { s.by[ch.AZ] = ch }

// Get returns the zone's characterization if present and fresh at now.
func (s *Store) Get(az string, now time.Time) (Characterization, bool) {
	ch, ok := s.by[az]
	if !ok {
		return Characterization{}, false
	}
	if !s.Fresh(ch, now) {
		return Characterization{}, false
	}
	return ch, true
}

// Last returns the zone's most recent characterization regardless of
// freshness. Callers that prefer degrading on stale data over flying blind
// (see router.Decision.Lookup) pair it with Fresh to decide how much to
// trust it.
func (s *Store) Last(az string) (Characterization, bool) {
	ch, ok := s.by[az]
	return ch, ok
}

// Fresh reports whether ch is still within the store's lifespan at now.
func (s *Store) Fresh(ch Characterization, now time.Time) bool {
	return s.ttl <= 0 || ch.Age(now) <= s.ttl
}

// Zones lists zones with stored characterizations (fresh or not), sorted.
func (s *Store) Zones() []string {
	out := make([]string, 0, len(s.by))
	for az := range s.by {
		out = append(out, az)
	}
	sort.Strings(out)
	return out
}

// TotalCost sums the sampling spend recorded across stored
// characterizations.
func (s *Store) TotalCost() float64 {
	var sum float64
	for _, ch := range s.by {
		sum += ch.CostUSD
	}
	return sum
}
