package charact

import (
	"strings"
	"testing"
	"time"

	"skyfaas/internal/cpu"
)

func obsSeries(c *Classifier, az string, dists ...Dist) {
	for _, d := range dists {
		c.Observe(az, d)
	}
}

func TestClassifierUnknownWithoutHistory(t *testing.T) {
	c := NewClassifier()
	if got := c.Classify("ghost"); got != ClassUnknown {
		t.Fatalf("class = %v", got)
	}
	c.Observe("z", Dist{cpu.Xeon25: 1})
	c.Observe("z", Dist{cpu.Xeon25: 1})
	if got := c.Classify("z"); got != ClassUnknown {
		t.Fatalf("two observations classified as %v, want unknown", got)
	}
	if c.StepAPEs("ghost") != nil {
		t.Fatal("step APEs for unknown zone")
	}
}

func TestClassifierStable(t *testing.T) {
	c := NewClassifier()
	obsSeries(c, "sa-east-1a",
		Dist{cpu.Xeon25: 0.65, cpu.Xeon30: 0.35},
		Dist{cpu.Xeon25: 0.64, cpu.Xeon30: 0.36},
		Dist{cpu.Xeon25: 0.66, cpu.Xeon30: 0.34},
		Dist{cpu.Xeon25: 0.65, cpu.Xeon30: 0.35},
	)
	if got := c.Classify("sa-east-1a"); got != ClassStable {
		t.Fatalf("class = %v, want stable", got)
	}
	if got := c.RecommendedInterval("sa-east-1a"); got != 7*24*time.Hour {
		t.Fatalf("interval = %v", got)
	}
}

func TestClassifierVolatile(t *testing.T) {
	c := NewClassifier()
	obsSeries(c, "ca-central-1a",
		Dist{cpu.Xeon25: 0.50, cpu.Xeon29: 0.30, cpu.Xeon30: 0.20},
		Dist{cpu.Xeon25: 0.20, cpu.Xeon29: 0.55, cpu.Xeon30: 0.25},
		Dist{cpu.Xeon25: 0.60, cpu.Xeon29: 0.10, cpu.Xeon30: 0.30},
	)
	if got := c.Classify("ca-central-1a"); got != ClassVolatile {
		t.Fatalf("class = %v, want volatile", got)
	}
	if got := c.RecommendedInterval("ca-central-1a"); got != 12*time.Hour {
		t.Fatalf("interval = %v", got)
	}
}

func TestClassifierModerate(t *testing.T) {
	c := NewClassifier()
	obsSeries(c, "z",
		Dist{cpu.Xeon25: 0.60, cpu.Xeon30: 0.40},
		Dist{cpu.Xeon25: 0.52, cpu.Xeon30: 0.48},
		Dist{cpu.Xeon25: 0.60, cpu.Xeon30: 0.40},
	)
	if got := c.Classify("z"); got != ClassModerate {
		t.Fatalf("class = %v, want moderate (8%% steps)", got)
	}
	if got := c.RecommendedInterval("z"); got != 2*24*time.Hour {
		t.Fatalf("interval = %v", got)
	}
}

func TestClassifierStepAPEs(t *testing.T) {
	c := NewClassifier()
	obsSeries(c, "z",
		Dist{cpu.Xeon25: 1},
		Dist{cpu.Xeon25: 0.9, cpu.Xeon30: 0.1},
		Dist{cpu.Xeon25: 0.9, cpu.Xeon30: 0.1},
	)
	steps := c.StepAPEs("z")
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0] < 9.9 || steps[0] > 10.1 || steps[1] > 0.01 {
		t.Fatalf("steps = %v", steps)
	}
}

func TestClassifierReportAndZones(t *testing.T) {
	c := NewClassifier()
	obsSeries(c, "a", Dist{cpu.Xeon25: 1}, Dist{cpu.Xeon25: 1}, Dist{cpu.Xeon25: 1})
	if zones := c.Zones(); len(zones) != 1 || zones[0] != "a" {
		t.Fatalf("zones = %v", zones)
	}
	if rep := c.Report(); !strings.Contains(rep, "a: stable") {
		t.Fatalf("report = %q", rep)
	}
}

func TestZoneClassString(t *testing.T) {
	for class, want := range map[ZoneClass]string{
		ClassUnknown: "unknown", ClassStable: "stable",
		ClassModerate: "moderate", ClassVolatile: "volatile",
	} {
		if got := class.String(); got != want {
			t.Errorf("%d.String() = %q", int(class), got)
		}
	}
}

func TestDefaultIntervalForUnknown(t *testing.T) {
	c := NewClassifier()
	if got := c.RecommendedInterval("ghost"); got != 24*time.Hour {
		t.Fatalf("interval = %v", got)
	}
}
