package charact

import (
	"fmt"
	"math"
	"testing"
	"time"

	"skyfaas/internal/cpu"
)

var passiveEpoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func TestPassiveDefaultWindow(t *testing.T) {
	if got := NewPassive(0).Window(); got != 24*time.Hour {
		t.Fatalf("default window = %v", got)
	}
}

func TestPassiveCharacterizationFromTraffic(t *testing.T) {
	p := NewPassive(time.Hour)
	// 60 instances: 40 on 2.5GHz, 20 on 3.0GHz.
	for i := 0; i < 60; i++ {
		kind := cpu.Xeon25
		if i%3 == 2 {
			kind = cpu.Xeon30
		}
		p.Observe("z", passiveEpoch.Add(time.Duration(i)*time.Second), fmt.Sprintf("fi-%d", i), kind)
	}
	now := passiveEpoch.Add(2 * time.Minute)
	if got := p.Samples("z", now); got != 60 {
		t.Fatalf("samples = %d", got)
	}
	ch, ok := p.Characterization("z", now, 50)
	if !ok {
		t.Fatal("characterization unavailable")
	}
	if ch.CostUSD != 0 {
		t.Errorf("passive characterization cost = %v, want free", ch.CostUSD)
	}
	if ch.Samples != 60 {
		t.Errorf("samples = %d", ch.Samples)
	}
	d := ch.Dist()
	if math.Abs(d[cpu.Xeon25]-2.0/3) > 1e-9 || math.Abs(d[cpu.Xeon30]-1.0/3) > 1e-9 {
		t.Errorf("dist = %v", d)
	}
}

func TestPassiveDeduplicatesLiveInstances(t *testing.T) {
	p := NewPassive(time.Hour)
	for i := 0; i < 10; i++ {
		p.Observe("z", passiveEpoch.Add(time.Duration(i)*time.Second), "same-fi", cpu.Xeon25)
	}
	if got := p.Samples("z", passiveEpoch.Add(time.Minute)); got != 1 {
		t.Fatalf("samples = %d, want 1 (deduplicated)", got)
	}
}

func TestPassiveWindowExpiry(t *testing.T) {
	p := NewPassive(time.Hour)
	p.Observe("z", passiveEpoch, "fi-old", cpu.EPYC)
	p.Observe("z", passiveEpoch.Add(90*time.Minute), "fi-new", cpu.Xeon30)
	now := passiveEpoch.Add(91 * time.Minute)
	if got := p.Samples("z", now); got != 1 {
		t.Fatalf("samples = %d, want 1 (old expired)", got)
	}
	ch, ok := p.Characterization("z", now, 1)
	if !ok {
		t.Fatal("characterization unavailable")
	}
	if ch.Dist()[cpu.EPYC] != 0 {
		t.Error("expired observation still counted")
	}
	// After expiry the same instance id may be observed again.
	p.Observe("z", now, "fi-old", cpu.EPYC)
	if got := p.Samples("z", now); got != 2 {
		t.Fatalf("samples after re-observation = %d", got)
	}
}

func TestPassiveMinSamplesGate(t *testing.T) {
	p := NewPassive(time.Hour)
	p.Observe("z", passiveEpoch, "fi-1", cpu.Xeon25)
	if _, ok := p.Characterization("z", passiveEpoch.Add(time.Second), 100); ok {
		t.Fatal("characterization with too few samples")
	}
	if _, ok := p.Characterization("ghost", passiveEpoch, 1); ok {
		t.Fatal("characterization of unobserved zone")
	}
	if got := p.Samples("ghost", passiveEpoch); got != 0 {
		t.Fatalf("ghost samples = %d", got)
	}
}
