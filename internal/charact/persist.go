package charact

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"skyfaas/internal/cpu"
)

// Persistence: a sky middleware re-profiles zones on a cadence of hours to
// days, so characterizations must outlive the process. The wire format
// keys CPU kinds by their catalog model string (stable across versions),
// not by numeric enum values.

// storeFile is the serialized form of a Store.
type storeFile struct {
	TTLSeconds float64              `json:"ttlSeconds"`
	Zones      []characterizationJS `json:"zones"`
}

type characterizationJS struct {
	AZ      string         `json:"az"`
	Taken   time.Time      `json:"taken"`
	Polls   int            `json:"polls"`
	Samples int            `json:"samples"`
	CostUSD float64        `json:"costUSD"`
	Counts  map[string]int `json:"counts"` // keyed by CPU model string
}

func toJS(ch Characterization) characterizationJS {
	counts := make(map[string]int, len(ch.Counts))
	for k, n := range ch.Counts {
		counts[cpu.MustLookup(k).Model] = n
	}
	return characterizationJS{
		AZ:      ch.AZ,
		Taken:   ch.Taken,
		Polls:   ch.Polls,
		Samples: ch.Samples,
		CostUSD: ch.CostUSD,
		Counts:  counts,
	}
}

func fromJS(js characterizationJS) (Characterization, error) {
	counts := make(Counts, len(js.Counts))
	for model, n := range js.Counts {
		k, err := cpu.FromModel(model)
		if err != nil {
			return Characterization{}, fmt.Errorf("charact: load %s: %w", js.AZ, err)
		}
		counts[k] = n
	}
	return Characterization{
		AZ:      js.AZ,
		Taken:   js.Taken,
		Polls:   js.Polls,
		Samples: js.Samples,
		CostUSD: js.CostUSD,
		Counts:  counts,
	}, nil
}

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	file := storeFile{TTLSeconds: s.ttl.Seconds()}
	zones := make([]string, 0, len(s.by))
	for az := range s.by {
		zones = append(zones, az)
	}
	sort.Strings(zones)
	for _, az := range zones {
		file.Zones = append(file.Zones, toJS(s.by[az]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("charact: save store: %w", err)
	}
	return nil
}

// LoadStore reads a store written by Save.
func LoadStore(r io.Reader) (*Store, error) {
	var file storeFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("charact: load store: %w", err)
	}
	s := NewStore(time.Duration(file.TTLSeconds * float64(time.Second)))
	for _, js := range file.Zones {
		ch, err := fromJS(js)
		if err != nil {
			return nil, err
		}
		s.Put(ch)
	}
	return s, nil
}
