package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almost(got, tt.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev single = %v", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-5, 15},
		{105, 50},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almost(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64, pa, pb float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(pa), 100)
		b := math.Mod(math.Abs(pb), 100)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max not 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		if r.N() != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return r.Mean() == 0 && r.StdDev() == 0
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almost(r.Mean(), Mean(xs), 1e-6*scale) &&
			almost(r.StdDev(), StdDev(xs), 1e-6*scale) &&
			r.Min() == Min(xs) && r.Max() == Max(xs)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningDirect(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.StdDev() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("n = %d", r.N())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", r.Mean())
	}
	if !almost(r.StdDev(), 2, 1e-12) {
		t.Fatalf("stddev = %v", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	// Single sample: stddev stays 0, min == max.
	var one Running
	one.Add(-3)
	if one.StdDev() != 0 || one.Min() != -3 || one.Max() != -3 {
		t.Fatalf("single sample: %v %v %v", one.StdDev(), one.Min(), one.Max())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		s.Add(base.Add(time.Duration(i)*time.Hour), float64(i*i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	vals := s.Values()
	if len(vals) != 5 || vals[3] != 9 {
		t.Fatalf("Values = %v", vals)
	}
	last, ok := s.Last()
	if !ok || last.V != 16 || !last.T.Equal(base.Add(4*time.Hour)) {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
}
