// Package stats provides the small set of descriptive statistics the
// experiments need: means, deviations, percentiles, running accumulators,
// and time series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when fewer
// than two samples exist.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		P99:    Percentile(xs, 99),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Running accumulates count/mean/variance online (Welford's algorithm) so
// hot loops avoid retaining every sample.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of samples folded in.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Min returns the smallest sample seen (0 before any Add).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample seen (0 before any Add).
func (r *Running) Max() float64 { return r.max }

// Point is one (time, value) observation.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends an observation.
func (s *Series) Add(t time.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Values returns just the values, in insertion order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent observation; ok is false when empty.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}
