package dynfunc

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Payload{
		Workload: "zipper",
		Scale:    1.5,
		Data:     bytes.Repeat([]byte("sky "), 1000),
	}
	w, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Hash == "" {
		t.Fatal("empty hash")
	}
	back, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != p.Workload || back.Scale != p.Scale || !bytes.Equal(back.Data, p.Data) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestEncodeRejectsUnknownWorkload(t *testing.T) {
	if _, err := Encode(Payload{Workload: "quantum_sort"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestEncodeCompresses(t *testing.T) {
	// Highly repetitive data should shrink on the wire.
	p := Payload{Workload: "sha1_hash", Data: bytes.Repeat([]byte("aaaa"), 100000)}
	w, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Blob) >= len(p.Data) {
		t.Errorf("wire %d bytes >= raw %d bytes", len(w.Blob), len(p.Data))
	}
}

func TestHashStableAndDistinct(t *testing.T) {
	a1, err := Encode(Payload{Workload: "sha1_hash", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Encode(Payload{Workload: "sha1_hash", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(Payload{Workload: "sha1_hash", Data: []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Hash != a2.Hash {
		t.Error("same payload, different hashes")
	}
	if a1.Hash == b.Hash {
		t.Error("different payloads, same hash")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(Wire{Blob: []byte("!!!not base64!!!")}); err == nil {
		t.Fatal("bad base64 accepted")
	}
	if _, err := Decode(Wire{Blob: []byte("aGVsbG8=")}); err == nil { // "hello", not gzip
		t.Fatal("non-gzip accepted")
	}
}

func TestDecodeMSModel(t *testing.T) {
	// Sub-millisecond floor for tiny cached payloads (§3.2: <1 ms).
	if ms := DecodeMS(100, true); ms >= 1 {
		t.Errorf("cached decode = %v ms, want <1", ms)
	}
	// ~70 ms at the 5 MB cap.
	if ms := DecodeMS(MaxPayloadBytes, false); ms < 60 || ms > 80 {
		t.Errorf("5MB decode = %v ms, want ~70", ms)
	}
	// Cached always cheaper.
	if DecodeMS(MaxPayloadBytes, true) >= DecodeMS(MaxPayloadBytes, false) {
		t.Error("cache does not help")
	}
	// Monotone in size.
	if DecodeMS(1000, false) > DecodeMS(100000, false) {
		t.Error("decode cost not monotone in size")
	}
}

func TestWorkFor(t *testing.T) {
	p := Payload{Workload: "matrix_multiply", Scale: 2}
	w, err := WorkFor(p, 5000, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Workload != workload.MatrixMultiply {
		t.Errorf("workload = %v", w.Workload)
	}
	if w.Scale != 2 {
		t.Errorf("scale = %v", w.Scale)
	}
	if w.ExtraMS <= 0 {
		t.Error("no decode overhead")
	}
	if _, err := WorkFor(Payload{Workload: "nope"}, 0, false); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestDeployAndInvokeThroughCloud(t *testing.T) {
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "r1", Loc: geo.Coord{},
		AZs: []cloudsim.AZSpec{{Name: "r1-a", PoolFIs: 1024, Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}}},
	}}
	cloud := cloudsim.New(env, 3, catalog, cloudsim.Options{HorizonDays: 1})
	if _, err := Deploy(cloud, "r1-a", "dyn-2048", 2048, cpu.X86); err != nil {
		t.Fatal(err)
	}
	wire, err := Encode(Payload{Workload: "sha1_hash"})
	if err != nil {
		t.Fatal(err)
	}
	var first, second cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		work, err := WorkFor(Payload{Workload: "sha1_hash"}, len(wire.Blob), false)
		if err != nil {
			t.Error(err)
			return nil
		}
		req := cloudsim.Request{
			Account: "a", AZ: "r1-a", Function: "dyn-2048",
			Work: work, PayloadHash: wire.Hash,
		}
		first = cloud.Invoke(p, req)
		// Second call hits the same warm instance: payload cached.
		work2, _ := WorkFor(Payload{Workload: "sha1_hash"}, len(wire.Blob), true)
		req.Work = work2
		second = cloud.Invoke(p, req)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !first.OK() || !second.OK() {
		t.Fatalf("errs: %v / %v", first.Err, second.Err)
	}
	if first.PayloadCached {
		t.Error("first call claims cached payload")
	}
	if !second.PayloadCached {
		t.Error("second call not cached")
	}
	if second.BilledMS >= first.BilledMS {
		t.Errorf("cached call (%.2fms) not cheaper than first (%.2fms)", second.BilledMS, first.BilledMS)
	}
}

func TestPayloadCapEnforced(t *testing.T) {
	// Incompressible (pseudo-random) data exceeding the cap must be
	// rejected.
	s := rng.New(1)
	data := make([]byte, MaxPayloadBytes)
	for i := 0; i+8 <= len(data); i += 8 {
		v := s.Uint64()
		for j := 0; j < 8; j++ {
			data[i+j] = byte(v >> (8 * j))
		}
	}
	_, err := Encode(Payload{Workload: "zipper", Data: data})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized payload not rejected: %v", err)
	}
}
