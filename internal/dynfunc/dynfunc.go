// Package dynfunc implements dynamic functions (§3.2): generic, pre-deployed
// serverless functions whose *payload* carries the workload to execute —
// source selector, parameters, and optional data files — so one deployment
// can run any workload without redeployment.
//
// The wire format matches the paper's FaaSET tooling: the payload is JSON,
// gzip-compressed and base64-encoded. Instances cache decoded payloads by
// hash on their ephemeral filesystem; a repeat request with the same hash
// skips the decode (§3.2 reports <1 ms for code, up to ~70 ms for a 5 MB
// data payload).
package dynfunc

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/workload"
)

// MaxPayloadBytes is the platform's request payload cap (5 MB, matching
// the paper's maximum tested payload).
const MaxPayloadBytes = 5 << 20

// Payload is what a caller ships to a dynamic function.
type Payload struct {
	// Workload selects the function logic by Table-1 name.
	Workload string `json:"workload"`
	// Scale multiplies the workload's base runtime (0 means 1).
	Scale float64 `json:"scale,omitempty"`
	// Data carries optional input files (already concatenated); it rides
	// inside the compressed wire payload.
	Data []byte `json:"data,omitempty"`
}

// Wire is an encoded payload ready to send.
type Wire struct {
	// Blob is the base64(gzip(json)) payload body.
	Blob []byte
	// Hash identifies the payload for per-instance caching.
	Hash string
}

// Encode serializes, compresses, and encodes a payload, returning the wire
// form and its cache hash.
func Encode(p Payload) (Wire, error) {
	if _, ok := workload.ByName(p.Workload); !ok {
		return Wire{}, fmt.Errorf("dynfunc: unknown workload %q", p.Workload)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return Wire{}, fmt.Errorf("dynfunc: marshal: %w", err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		return Wire{}, fmt.Errorf("dynfunc: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return Wire{}, fmt.Errorf("dynfunc: compress: %w", err)
	}
	blob := make([]byte, base64.StdEncoding.EncodedLen(gz.Len()))
	base64.StdEncoding.Encode(blob, gz.Bytes())
	if len(blob) > MaxPayloadBytes {
		return Wire{}, fmt.Errorf("dynfunc: payload %d bytes exceeds %d cap", len(blob), MaxPayloadBytes)
	}
	sum := sha256.Sum256(blob)
	return Wire{Blob: blob, Hash: hex.EncodeToString(sum[:16])}, nil
}

// Decode reverses Encode.
func Decode(w Wire) (Payload, error) {
	gzBytes := make([]byte, base64.StdEncoding.DecodedLen(len(w.Blob)))
	n, err := base64.StdEncoding.Decode(gzBytes, w.Blob)
	if err != nil {
		return Payload{}, fmt.Errorf("dynfunc: base64: %w", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(gzBytes[:n]))
	if err != nil {
		return Payload{}, fmt.Errorf("dynfunc: gunzip: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return Payload{}, fmt.Errorf("dynfunc: gunzip: %w", err)
	}
	if err := zr.Close(); err != nil {
		return Payload{}, fmt.Errorf("dynfunc: gunzip: %w", err)
	}
	var p Payload
	if err := json.Unmarshal(raw, &p); err != nil {
		return Payload{}, fmt.Errorf("dynfunc: unmarshal: %w", err)
	}
	return p, nil
}

// DecodeMS models the in-function decode-and-store overhead for a payload
// of wireLen bytes: ~0.8 ms framework floor plus decompression time that
// reaches ~70 ms at the 5 MB cap. A cached payload skips the decode.
func DecodeMS(wireLen int, cached bool) float64 {
	const floorMS = 0.8
	if cached {
		return floorMS
	}
	return floorMS + 70*float64(wireLen)/float64(MaxPayloadBytes)
}

// WorkFor maps a decoded payload to the behavior the instance executes,
// with the decode overhead folded in.
func WorkFor(p Payload, wireLen int, cached bool) (cloudsim.WorkBehavior, error) {
	spec, ok := workload.ByName(p.Workload)
	if !ok {
		return cloudsim.WorkBehavior{}, fmt.Errorf("dynfunc: unknown workload %q", p.Workload)
	}
	return cloudsim.WorkBehavior{
		Workload: spec.ID,
		Scale:    p.Scale,
		ExtraMS:  DecodeMS(wireLen, cached),
	}, nil
}

// Deploy installs a dynamic function in the named zone. The deployment is
// marked Dynamic so invocations carry their behavior in the request, and
// its fallback behavior (payload-less ping) is a 1 ms sleep.
func Deploy(cloud *cloudsim.Cloud, az, name string, memoryMB int, arch cpu.Arch) (*cloudsim.Deployment, error) {
	cfg := cloudsim.DeployConfig{
		MemoryMB: memoryMB,
		Arch:     arch,
		Dynamic:  true,
		Behavior: cloudsim.SleepBehavior{D: time.Millisecond}, // ping
		CodeHash: "dynfunc-v1",
	}
	dep, err := cloud.Deploy(az, name, cfg)
	if err != nil {
		return nil, fmt.Errorf("dynfunc: %w", err)
	}
	return dep, nil
}
