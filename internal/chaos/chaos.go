// Package chaos is the sky's fault-injection subsystem: a deterministic
// scheduler of platform pathologies over the simulated multi-cloud.
//
// The paper evaluates smart routing under a well-behaved sky, but the whole
// mechanism — retries, region hopping, >50%-failure saturation detection —
// is a resilience story, and real FaaS performance testing is dominated by
// platform instability (throttling storms, cold-start spikes, capacity
// swings). This package makes the simulated sky hostile on purpose: each
// Fault is a timed window of one pathology on one availability zone, faults
// compose into named Scenarios, and an Injector arms them on the simulation
// clock. Everything is driven by sim.Env scheduling and the zones' seeded
// rng streams, so a chaos run replays bit-identically from its seed.
//
// Fault kinds map onto the cloudsim hooks:
//
//	Outage         — the zone rejects every request (ErrZoneOutage)
//	ThrottleStorm  — spurious 429s at Magnitude probability per request
//	ColdStartSpike — cold-start init time scaled by Magnitude
//	RTTSpike       — ExtraRTT added to every round trip touching the zone
//	DriftBurst     — Magnitude of the idle host pool re-drawn from a
//	                 perturbed mix every Every during the window
//	                 (characterization poisoning)
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/metrics"
)

// Kind names one fault pathology.
type Kind string

// The supported fault kinds.
const (
	Outage         Kind = "outage"
	ThrottleStorm  Kind = "throttle-storm"
	ColdStartSpike Kind = "coldstart-spike"
	RTTSpike       Kind = "rtt-spike"
	DriftBurst     Kind = "drift-burst"
)

// Kinds returns every supported fault kind, in stable order.
func Kinds() []Kind {
	return []Kind{Outage, ThrottleStorm, ColdStartSpike, RTTSpike, DriftBurst}
}

// Errors the injector reports. ErrUnknownKind and ErrBadFault are sentinel
// values so admin layers can map them onto 400s.
var (
	ErrUnknownKind = errors.New("chaos: unknown fault kind")
	ErrBadFault    = errors.New("chaos: invalid fault")
)

// Fault is one timed pathology window on one availability zone. Start is an
// offset from injection time; the window is [Start, Start+Duration).
type Fault struct {
	Kind Kind
	AZ   string
	// Start delays the window's onset from the moment of injection.
	Start time.Duration
	// Duration is the window length (must be positive).
	Duration time.Duration
	// Magnitude parameterizes the pathology: ThrottleStorm's per-request
	// rejection probability in [0,1] (default 0.75), ColdStartSpike's init
	// multiplier (default 8), DriftBurst's idle-pool replacement fraction
	// in [0,1] (default 0.6). Ignored by Outage and RTTSpike.
	Magnitude float64
	// ExtraRTT is RTTSpike's added round trip (default 150 ms).
	ExtraRTT time.Duration
	// Step is DriftBurst's mix-walk step (default 0.5).
	Step float64
	// Every is DriftBurst's repetition period within the window
	// (default 10 min; the first burst lands at Start).
	Every time.Duration
}

func (f Fault) withDefaults() Fault {
	switch f.Kind {
	case ThrottleStorm:
		if f.Magnitude == 0 {
			f.Magnitude = 0.75
		}
	case ColdStartSpike:
		if f.Magnitude == 0 {
			f.Magnitude = 8
		}
	case RTTSpike:
		if f.ExtraRTT == 0 {
			f.ExtraRTT = 150 * time.Millisecond
		}
	case DriftBurst:
		if f.Magnitude == 0 {
			f.Magnitude = 0.6
		}
		if f.Step == 0 {
			f.Step = 0.5
		}
		if f.Every == 0 {
			f.Every = 10 * time.Minute
		}
	}
	return f
}

func (f Fault) validate() error {
	known := false
	for _, k := range Kinds() {
		if f.Kind == k {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("%w: %q (valid: %v)", ErrUnknownKind, f.Kind, Kinds())
	}
	if f.AZ == "" {
		return fmt.Errorf("%w: no AZ", ErrBadFault)
	}
	if f.Duration <= 0 {
		return fmt.Errorf("%w: non-positive duration", ErrBadFault)
	}
	if f.Start < 0 {
		return fmt.Errorf("%w: negative start offset", ErrBadFault)
	}
	if f.Magnitude < 0 || ((f.Kind == ThrottleStorm || f.Kind == DriftBurst) && f.Magnitude > 1) {
		return fmt.Errorf("%w: magnitude %v out of range for %s", ErrBadFault, f.Magnitude, f.Kind)
	}
	return nil
}

// State labels where a scheduled fault is in its lifecycle.
type State string

// Fault lifecycle states.
const (
	StatePending State = "pending"
	StateActive  State = "active"
	StateDone    State = "done"
)

// Status describes one scheduled fault.
type Status struct {
	ID      int
	Fault   Fault
	StartAt time.Time
	EndAt   time.Time
	State   State
}

// scheduled is the injector's record of one armed fault.
type scheduled struct {
	id      int
	fault   Fault
	startAt time.Time
	endAt   time.Time
	state   State
}

// Injector arms fault windows against a cloud. All methods must be called
// from inside the simulation (an Env callback or process); the injector
// shares the kernel's single-threaded discipline and needs no locking.
type Injector struct {
	cloud    *cloudsim.Cloud
	seq      int
	faults   []*scheduled
	active   *metrics.Gauge
	injected map[Kind]*metrics.Counter
}

// NewInjector returns an injector over cloud, reporting into reg (nil
// disables instrumentation).
func NewInjector(cloud *cloudsim.Cloud, reg *metrics.Registry) *Injector {
	in := &Injector{
		cloud: cloud,
		active: reg.Gauge("sky_chaos_active_faults",
			"fault windows currently in their active phase"),
		injected: make(map[Kind]*metrics.Counter, len(Kinds())),
	}
	for _, k := range Kinds() {
		in.injected[k] = reg.Counter("sky_chaos_faults_injected_total",
			"fault windows armed, by kind", metrics.L("kind", string(k)))
	}
	return in
}

// Inject validates f, arms its window on the simulation clock, and returns
// the fault's ID.
func (in *Injector) Inject(f Fault) (int, error) {
	f = f.withDefaults()
	if err := f.validate(); err != nil {
		return 0, err
	}
	az, ok := in.cloud.AZ(f.AZ)
	if !ok {
		return 0, fmt.Errorf("%w: %q", cloudsim.ErrNoSuchAZ, f.AZ)
	}
	// Fault windows run on the target zone's shard: the transitions mutate
	// zone state, which only the zone's own shard may touch. Inject itself
	// is called from the control side (an experiment's client process, or
	// setup code before the run), so under a sharded engine the window
	// events cross shards through the merge barrier; an onset closer than
	// the group lookahead is deferred to the lookahead — the earliest
	// instant another shard can deterministically observe anything.
	ctl := in.cloud.Env()
	azEnv := az.Env()
	now := ctl.Now()
	in.seq++
	sc := &scheduled{
		id:      in.seq,
		fault:   f,
		startAt: now.Add(f.Start),
		endAt:   now.Add(f.Start + f.Duration),
		state:   StatePending,
	}
	in.faults = append(in.faults, sc)
	in.injected[f.Kind].Inc()

	schedule := func(d time.Duration, fn func()) {
		if azEnv == ctl {
			azEnv.Schedule(d, fn)
			return
		}
		if min := azEnv.Group().Lookahead(); d < min {
			d = min
		}
		ctl.SendTo(azEnv, d, fn)
	}
	schedule(f.Start, func() {
		sc.state = StateActive
		in.active.Inc()
		if f.Kind == DriftBurst {
			in.runDriftBursts(az, sc)
		} else {
			in.applyState(az)
		}
	})
	schedule(f.Start+f.Duration, func() {
		sc.state = StateDone
		in.active.Dec()
		if f.Kind != DriftBurst {
			in.applyState(az)
		}
	})
	return sc.id, nil
}

// runDriftBursts fires the poisoning bursts across the window: one at the
// window start, then one per Every until the window closes.
func (in *Injector) runDriftBursts(az *cloudsim.AZ, sc *scheduled) {
	var fire func()
	fire = func() {
		if sc.state != StateActive {
			return
		}
		az.DriftBurst(sc.fault.Magnitude, sc.fault.Step)
		az.Env().Schedule(sc.fault.Every, fire)
	}
	fire()
}

// applyState recomputes az's stateful fault fields from every currently
// active window, so overlapping windows compose deterministically (the
// strongest active magnitude wins) and ending one window never clears
// another still in flight.
func (in *Injector) applyState(az *cloudsim.AZ) {
	outage := false
	throttle := 0.0
	coldMult := 0.0
	var extraRTT time.Duration
	for _, sc := range in.faults {
		if sc.state != StateActive || sc.fault.AZ != az.Name() {
			continue
		}
		switch sc.fault.Kind {
		case Outage:
			outage = true
		case ThrottleStorm:
			if sc.fault.Magnitude > throttle {
				throttle = sc.fault.Magnitude
			}
		case ColdStartSpike:
			if sc.fault.Magnitude > coldMult {
				coldMult = sc.fault.Magnitude
			}
		case RTTSpike:
			if sc.fault.ExtraRTT > extraRTT {
				extraRTT = sc.fault.ExtraRTT
			}
		}
	}
	az.SetOutage(outage)
	az.SetThrottleStorm(throttle)
	az.SetColdStartSpike(coldMult)
	az.SetExtraRTT(extraRTT)
}

// Faults lists every scheduled fault in injection order.
func (in *Injector) Faults() []Status {
	out := make([]Status, 0, len(in.faults))
	for _, sc := range in.faults {
		out = append(out, Status{
			ID: sc.id, Fault: sc.fault,
			StartAt: sc.startAt, EndAt: sc.endAt, State: sc.state,
		})
	}
	return out
}

// ActiveCount reports how many windows are currently active.
func (in *Injector) ActiveCount() int {
	n := 0
	for _, sc := range in.faults {
		if sc.state == StateActive {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Scenarios

// Scenario is a named, composable set of fault windows.
type Scenario struct {
	Name   string
	Faults []Fault
}

// InjectScenario arms every fault in s and returns their IDs. Injection is
// all-or-nothing in intent but not transactional: on error, already-armed
// faults stay armed (the caller typically aborts the run anyway).
func (in *Injector) InjectScenario(s Scenario) ([]int, error) {
	ids := make([]int, 0, len(s.Faults))
	for _, f := range s.Faults {
		id, err := in.Inject(f)
		if err != nil {
			return ids, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// The canned EX-6 scenarios. Each targets one zone and is sized so a burst
// started a minute after injection runs fully inside the window.

// ThrottleStormScenario is a 30-minute 429 storm on az at rate.
func ThrottleStormScenario(az string, rate float64) Scenario {
	return Scenario{
		Name: "throttle-storm",
		Faults: []Fault{{
			Kind: ThrottleStorm, AZ: az, Magnitude: rate,
			Duration: 30 * time.Minute,
		}},
	}
}

// OutageScenario takes az fully offline for 20 minutes, starting one
// minute in — bursts in flight see the zone die under them.
func OutageScenario(az string) Scenario {
	return Scenario{
		Name: "zone-outage",
		Faults: []Fault{{
			Kind: Outage, AZ: az,
			Start: time.Minute, Duration: 20 * time.Minute,
		}},
	}
}

// DegradedScenario is the kitchen sink short of an outage: an 8x cold-start
// spike, +150 ms RTT, and characterization-poisoning drift bursts, all on
// az for 30 minutes.
func DegradedScenario(az string) Scenario {
	return Scenario{
		Name: "degraded",
		Faults: []Fault{
			{Kind: ColdStartSpike, AZ: az, Duration: 30 * time.Minute},
			{Kind: RTTSpike, AZ: az, Duration: 30 * time.Minute},
			{Kind: DriftBurst, AZ: az, Duration: 30 * time.Minute},
		},
	}
}

// ScenarioNames lists the canned scenario names, sorted.
func ScenarioNames() []string {
	names := []string{"throttle-storm", "zone-outage", "degraded"}
	sort.Strings(names)
	return names
}

// ScenarioByName builds a canned scenario targeting az; ok is false for
// unknown names.
func ScenarioByName(name, az string) (Scenario, bool) {
	switch name {
	case "throttle-storm":
		return ThrottleStormScenario(az, 0.75), true
	case "zone-outage":
		return OutageScenario(az), true
	case "degraded":
		return DegradedScenario(az), true
	default:
		return Scenario{}, false
	}
}
