package chaos

import (
	"errors"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/metrics"
	"skyfaas/internal/sim"
)

var testEpoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func world(t *testing.T) (*sim.Env, *cloudsim.Cloud, *Injector) {
	t.Helper()
	env := sim.NewEnv(testEpoch)
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "r1", Loc: geo.Coord{Lat: 40, Lon: -80},
		AZs: []cloudsim.AZSpec{
			{Name: "az-a", PoolFIs: 1024, Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}},
			{Name: "az-b", PoolFIs: 1024, Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}},
		},
	}}
	cloud := cloudsim.New(env, 11, catalog, cloudsim.Options{HorizonDays: 1})
	return env, cloud, NewInjector(cloud, metrics.NewRegistry())
}

func TestInjectValidation(t *testing.T) {
	_, _, in := world(t)
	cases := []struct {
		name  string
		fault Fault
		want  error
	}{
		{"unknown kind", Fault{Kind: "meteor", AZ: "az-a", Duration: time.Minute}, ErrUnknownKind},
		{"missing az", Fault{Kind: Outage, Duration: time.Minute}, ErrBadFault},
		{"zero duration", Fault{Kind: Outage, AZ: "az-a"}, ErrBadFault},
		{"negative start", Fault{Kind: Outage, AZ: "az-a", Start: -time.Second, Duration: time.Minute}, ErrBadFault},
		{"rate above one", Fault{Kind: ThrottleStorm, AZ: "az-a", Duration: time.Minute, Magnitude: 1.5}, ErrBadFault},
		{"ghost az", Fault{Kind: Outage, AZ: "ghost", Duration: time.Minute}, cloudsim.ErrNoSuchAZ},
	}
	for _, tc := range cases {
		if _, err := in.Inject(tc.fault); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if len(in.Faults()) != 0 {
		t.Errorf("invalid faults were recorded: %v", in.Faults())
	}
}

func TestFaultWindowLifecycle(t *testing.T) {
	env, cloud, in := world(t)
	id, err := in.Inject(Fault{
		Kind: Outage, AZ: "az-a",
		Start: time.Minute, Duration: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	az, _ := cloud.AZ("az-a")
	type sample struct {
		at     time.Duration
		state  State
		outage bool
	}
	var got []sample
	for _, at := range []time.Duration{30 * time.Second, 90 * time.Second, 4 * time.Minute} {
		at := at
		env.Schedule(at, func() {
			st := in.Faults()[0].State
			got = append(got, sample{at, st, az.FaultSnapshot().Outage})
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []sample{
		{30 * time.Second, StatePending, false},
		{90 * time.Second, StateActive, true},
		{4 * time.Minute, StateDone, false},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := in.Faults()[0]
	if st.ID != id || st.StartAt != testEpoch.Add(time.Minute) || st.EndAt != testEpoch.Add(3*time.Minute) {
		t.Errorf("status = %+v", st)
	}
}

func TestOverlappingWindowsCompose(t *testing.T) {
	env, cloud, in := world(t)
	// Two throttle storms overlap; the stronger magnitude must win while
	// both are active, and ending the strong one must fall back to the weak
	// one, not clear the fault.
	if _, err := in.Inject(Fault{Kind: ThrottleStorm, AZ: "az-a", Magnitude: 0.3, Duration: 10 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Inject(Fault{Kind: ThrottleStorm, AZ: "az-a", Magnitude: 0.9, Start: 2 * time.Minute, Duration: 2 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	az, _ := cloud.AZ("az-a")
	rates := map[time.Duration]float64{}
	for _, at := range []time.Duration{time.Minute, 3 * time.Minute, 5 * time.Minute, 11 * time.Minute} {
		at := at
		env.Schedule(at, func() { rates[at] = az.FaultSnapshot().ThrottleRate })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[time.Duration]float64{
		time.Minute:      0.3, // only the weak storm active
		3 * time.Minute:  0.9, // strongest active magnitude wins
		5 * time.Minute:  0.3, // strong window over, weak persists
		11 * time.Minute: 0,   // all clear
	}
	for at, w := range want {
		if rates[at] != w {
			t.Errorf("rate at %v = %v, want %v", at, rates[at], w)
		}
	}
}

func TestThrottleStormRejectsRequests(t *testing.T) {
	env, cloud, in := world(t)
	if _, err := cloud.Deploy("az-a", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024, Behavior: cloudsim.SleepBehavior{D: 10 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Inject(Fault{Kind: ThrottleStorm, AZ: "az-a", Magnitude: 1, Duration: time.Hour}); err != nil {
		t.Fatal(err)
	}
	var resp cloudsim.Response
	env.Go("caller", func(p *sim.Proc) error {
		p.Sleep(time.Minute) // storm active
		resp = cloud.Invoke(p, cloudsim.Request{Account: "a", AZ: "az-a", Function: "fn"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err, cloudsim.ErrThrottled) {
		t.Fatalf("err = %v, want throttled", resp.Err)
	}
}

func TestOutageRejectsEverything(t *testing.T) {
	env, cloud, in := world(t)
	if _, err := cloud.Deploy("az-a", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024, Behavior: cloudsim.SleepBehavior{D: 10 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Inject(Fault{Kind: Outage, AZ: "az-a", Duration: time.Hour}); err != nil {
		t.Fatal(err)
	}
	var during, after cloudsim.Response
	env.Go("caller", func(p *sim.Proc) error {
		p.Sleep(time.Minute)
		during = cloud.Invoke(p, cloudsim.Request{Account: "a", AZ: "az-a", Function: "fn"})
		p.Sleep(time.Hour) // outage over
		after = cloud.Invoke(p, cloudsim.Request{Account: "a", AZ: "az-a", Function: "fn"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(during.Err, cloudsim.ErrZoneOutage) {
		t.Fatalf("during: %v, want outage", during.Err)
	}
	if !after.OK() {
		t.Fatalf("after window: %v, want recovery", after.Err)
	}
}

func TestDriftBurstPerturbsMix(t *testing.T) {
	env, cloud, in := world(t)
	az, _ := cloud.AZ("az-b")
	before := az.TrueMix()
	if _, err := in.Inject(Fault{
		Kind: DriftBurst, AZ: "az-b",
		Duration: 30 * time.Minute, Magnitude: 0.8, Step: 0.9, Every: 5 * time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	var after map[cpu.Kind]float64
	env.Schedule(20*time.Minute, func() { after = az.TrueMix() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var moved float64
	for _, k := range cpu.Kinds() {
		d := after[k] - before[k]
		if d < 0 {
			d = -d
		}
		moved += d
	}
	if moved < 0.05 {
		t.Errorf("idle mix barely moved (L1=%v): drift burst had no effect", moved)
	}
}

func TestScenariosByName(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 3 {
		t.Fatalf("scenario names = %v", names)
	}
	for _, name := range names {
		sc, ok := ScenarioByName(name, "az-a")
		if !ok || sc.Name != name || len(sc.Faults) == 0 {
			t.Errorf("scenario %q = %+v ok=%v", name, sc, ok)
		}
		for _, f := range sc.Faults {
			if f.AZ != "az-a" {
				t.Errorf("scenario %q fault targets %q", name, f.AZ)
			}
		}
	}
	if _, ok := ScenarioByName("volcano", "az-a"); ok {
		t.Error("unknown scenario resolved")
	}
}

func TestInjectScenarioArmsAllFaults(t *testing.T) {
	env, _, in := world(t)
	sc, _ := ScenarioByName("degraded", "az-b")
	ids, err := in.InjectScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	var active int
	env.Schedule(time.Minute, func() { active = in.ActiveCount() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if active != 3 {
		t.Errorf("active at +1m = %d, want 3", active)
	}
}

// TestChaosDeterminism: the same seed must yield the same post-chaos world,
// and a calm run must be unaffected by the chaos hooks existing at all.
func TestChaosDeterminism(t *testing.T) {
	mixAfterStorm := func() map[cpu.Kind]float64 {
		env, cloud, in := world(t)
		sc, _ := ScenarioByName("degraded", "az-b")
		if _, err := in.InjectScenario(sc); err != nil {
			t.Fatal(err)
		}
		az, _ := cloud.AZ("az-b")
		var mix map[cpu.Kind]float64
		env.Schedule(25*time.Minute, func() { mix = az.TrueMix() })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return mix
	}
	a, b := mixAfterStorm(), mixAfterStorm()
	for _, k := range cpu.Kinds() {
		if a[k] != b[k] {
			t.Fatalf("same-seed drift diverged on %v: %v vs %v", k, a[k], b[k])
		}
	}
}
