package cloudsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/sim"
)

// The warm-pool actuator's core contract: a pre-warmed FI is
// indistinguishable from an organically warmed one. These tests pin the
// lifecycle invariants — keep-alive reaping with idleGen validation, floor
// retention, idle-host redraw protection, and billing attribution.

func TestPreWarmServesWarmRequests(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{})
	deploySleep(t, c, "fn", 50*time.Millisecond)
	az, _ := c.AZ("test-az-1a")
	var provisioned int
	var cost float64
	env.Schedule(0, func() {
		var err error
		provisioned, cost, err = az.PreWarm("fn", 3, "acct")
		if err != nil {
			t.Errorf("PreWarm: %v", err)
		}
	})
	var resp Response
	env.Go("client", func(p *sim.Proc) error {
		p.Sleep(10 * time.Second) // initialization (~140 ms) has finished
		resp = c.Invoke(p, Request{Account: "acct", AZ: "test-az-1a", Function: "fn"})
		return nil
	})
	env.Schedule(5*time.Second, func() {
		if got := az.WarmIdle("fn"); got != 3 {
			t.Errorf("warm idle = %d after init, want 3", got)
		}
		if got := az.WarmLive("fn"); got != 3 {
			t.Errorf("warm live = %d after init, want 3", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if provisioned != 3 || cost <= 0 {
		t.Fatalf("provisioned %d at $%f, want 3 at a positive cost", provisioned, cost)
	}
	if !resp.OK() {
		t.Fatalf("invoke: %v", resp.Err)
	}
	if resp.Cold {
		t.Error("request landing on a pre-warmed pool must not cold start")
	}
}

func TestPreWarmedObeyKeepAliveReaping(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{KeepAlive: time.Minute})
	deploySleep(t, c, "fn", 50*time.Millisecond)
	az, _ := c.AZ("test-az-1a")
	env.Schedule(0, func() {
		if _, _, err := az.PreWarm("fn", 4, "acct"); err != nil {
			t.Errorf("PreWarm: %v", err)
		}
	})
	// One instance is re-used just before expiry: its idleGen bump voids
	// the pending timer exactly as it does for an organically warmed FI,
	// and release re-arms from the release time.
	env.Go("client", func(p *sim.Proc) error {
		p.Sleep(55 * time.Second)
		resp := c.Invoke(p, Request{Account: "acct", AZ: "test-az-1a", Function: "fn"})
		if resp.Cold {
			t.Error("reuse of a pre-warmed instance must be warm")
		}
		return nil
	})
	env.Schedule(70*time.Second, func() {
		// The three untouched instances expired one keep-alive after
		// their init completed; the reused one is still inside its
		// re-armed window.
		if got := az.WarmIdle("fn"); got != 1 {
			t.Errorf("warm idle = %d at +70s, want 1 survivor", got)
		}
		if az.LiveFIs() != 1 {
			t.Errorf("live FIs = %d at +70s, want 1", az.LiveFIs())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if az.LiveFIs() != 0 {
		t.Errorf("live FIs = %d after drain, want full reaping", az.LiveFIs())
	}
}

func TestWarmFloorHoldsThenLoweringReaps(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{KeepAlive: time.Minute})
	deploySleep(t, c, "fn", 50*time.Millisecond)
	az, _ := c.AZ("test-az-1a")
	env.Schedule(0, func() {
		if err := az.SetWarmFloor("fn", 2); err != nil {
			t.Errorf("SetWarmFloor: %v", err)
		}
		if _, _, err := az.PreWarm("fn", 5, "acct"); err != nil {
			t.Errorf("PreWarm: %v", err)
		}
	})
	env.Schedule(90*time.Second, func() {
		if got := az.WarmIdle("fn"); got != 2 {
			t.Errorf("warm idle = %d past keep-alive, want the floor of 2", got)
		}
		// Lowering the floor re-arms the held instances; they reap one
		// keep-alive window later.
		if err := az.SetWarmFloor("fn", 0); err != nil {
			t.Errorf("SetWarmFloor: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if az.LiveFIs() != 0 {
		t.Errorf("live FIs = %d after floor cleared, want 0", az.LiveFIs())
	}
	// A floor set directly (not via StartEnsureWarm) has no paying account
	// and is never hold-billed.
	if got := c.Meter().TotalPrefix("acct", "warmpool/hold/"); got != 0 {
		t.Errorf("direct SetWarmFloor accrued hold charge %f, want 0", got)
	}
}

// TestWarmFloorHoldBilling pins the provisioned-concurrency pricing: each
// ensure-warm actuation settles the instance-seconds held above keep-alive
// by the previous floor, at the discounted GB-time rate, under the
// warmpool/hold bucket.
func TestWarmFloorHoldBilling(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{KeepAlive: time.Minute})
	deploySleep(t, c, "fn", 50*time.Millisecond)
	var first, second ProvisionResult
	env.Schedule(0, func() {
		c.StartEnsureWarm(env, "test-az-1a", "fn", 3, 3, "acct", func(r ProvisionResult) { first = r })
	})
	env.Schedule(2*time.Minute, func() {
		c.StartEnsureWarm(env, "test-az-1a", "fn", 3, 3, "acct", func(r ProvisionResult) { second = r })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if first.Err != nil || first.Provisioned != 3 {
		t.Fatalf("first actuation = %+v, want 3 provisioned", first)
	}
	if first.HoldUSD != 0 {
		t.Errorf("first.HoldUSD = %f, want 0 (no prior floor to settle)", first.HoldUSD)
	}
	if second.Err != nil || second.Requested != 0 {
		t.Fatalf("second actuation = %+v, want no new provisioning", second)
	}
	if second.HoldUSD <= 0 || second.CostUSD != second.HoldUSD {
		t.Fatalf("second actuation cost = %+v, want a pure hold charge", second)
	}
	hold := c.Meter().TotalPrefix("acct", "warmpool/hold/")
	if math.Abs(hold-second.HoldUSD) > 1e-12 {
		t.Errorf("hold bucket = %f, want %f", hold, second.HoldUSD)
	}
	// WarmPoolSpend rolls up initialization and hold charges together.
	if wp := c.WarmPoolSpend("acct"); math.Abs(wp-(first.CostUSD+second.CostUSD)) > 1e-12 {
		t.Errorf("WarmPoolSpend = %f, want %f", wp, first.CostUSD+second.CostUSD)
	}
}

func TestWarmHostsSurviveIdleHostRedraw(t *testing.T) {
	// A DriftBurst (and daily drift) redraws only hosts with used == 0.
	// Pre-warmed idle FIs hold their host slot, so their hosts must keep
	// their CPU while every actually-idle host is redrawn.
	env, c := testWorld(t, AZSpec{
		Name:    "test-az-1a",
		PoolFIs: 1024,
		Mix:     map[cpu.Kind]float64{cpu.Xeon25: 1},
	}, Options{KeepAlive: time.Minute})
	deploySleep(t, c, "fn", 50*time.Millisecond)
	az, _ := c.AZ("test-az-1a")
	env.Schedule(0, func() {
		if _, _, err := az.PreWarm("fn", 3, "acct"); err != nil {
			t.Errorf("PreWarm: %v", err)
		}
	})
	env.Schedule(time.Second, func() {
		warmHosts := make(map[*Host]bool)
		for _, fi := range az.deployments["fn"].warm {
			if !fi.destroyed {
				warmHosts[fi.host] = true
			}
		}
		if len(warmHosts) == 0 {
			t.Fatal("no warm hosts to protect")
		}
		az.replaceIdleHostsFrom(1, map[cpu.Kind]float64{cpu.EPYC: 1})
		for _, h := range az.hosts {
			if warmHosts[h] && h.kind != cpu.Xeon25 {
				t.Errorf("occupied warm host %s redrawn to %v", h.id, h.kind)
			}
			if !warmHosts[h] && h.kind != cpu.EPYC {
				t.Errorf("idle host %s not redrawn: %v", h.id, h.kind)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPreWarmBilledUnderWarmPoolBucket(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{})
	deploySleep(t, c, "fn", 50*time.Millisecond)
	az, _ := c.AZ("test-az-1a")
	var cost float64
	env.Schedule(0, func() {
		_, cost, _ = az.PreWarm("fn", 2, "acct")
	})
	env.Go("client", func(p *sim.Proc) error {
		p.Sleep(10 * time.Second)
		c.Invoke(p, Request{Account: "acct", AZ: "test-az-1a", Function: "fn"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	wp := c.WarmPoolSpend("acct")
	if math.Abs(wp-cost) > 1e-12 || wp <= 0 {
		t.Fatalf("warm-pool spend %f, want the provisioning cost %f", wp, cost)
	}
	if got := c.Meter().TotalPrefix("acct", "warmpool/"); got != wp {
		t.Fatalf("TotalPrefix = %f, want %f", got, wp)
	}
	// The account's full rollup includes both the warm-pool bucket and the
	// ordinary request charge.
	if total := c.Meter().Total("acct"); total <= wp {
		t.Fatalf("total %f should exceed warm-pool spend %f by the request charge", total, wp)
	}
}

func TestStartEnsureWarm(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{KeepAlive: time.Minute})
	deploySleep(t, c, "fn", 50*time.Millisecond)
	var first, second, missing ProvisionResult
	env.Schedule(0, func() {
		c.StartEnsureWarm(env, "test-az-1a", "fn", 4, 2, "acct", func(r ProvisionResult) { first = r })
		c.StartEnsureWarm(env, "nowhere", "fn", 1, 0, "acct", func(r ProvisionResult) { missing = r })
	})
	env.Schedule(30*time.Second, func() {
		// Pool already at target: the second actuation is a no-op that
		// reports the idle pool.
		c.StartEnsureWarm(env, "test-az-1a", "fn", 4, 2, "acct", func(r ProvisionResult) { second = r })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if first.Err != nil || first.Requested != 4 || first.Provisioned != 4 || first.Live != 4 || first.CostUSD <= 0 {
		t.Fatalf("first actuation = %+v, want 4 provisioned at a positive cost", first)
	}
	if first.Idle != 0 {
		t.Fatalf("first.Idle = %d, want 0 (instances still initializing)", first.Idle)
	}
	if second.Err != nil || second.Requested != 0 || second.Provisioned != 0 || second.Live != 4 || second.Idle != 4 {
		t.Fatalf("second actuation = %+v, want a no-op against a full idle pool", second)
	}
	if !errors.Is(missing.Err, ErrNoSuchAZ) {
		t.Fatalf("missing zone err = %v, want ErrNoSuchAZ", missing.Err)
	}
}
