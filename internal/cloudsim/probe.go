package cloudsim

import (
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/saaf"
)

// ProbeBehavior is the CPU-aware decision logic the paper adds to its
// workloads for the retry strategies (§3.5): on arrival the function
// inspects its instance's CPU; if the CPU is banned it *declines* —
// responding immediately so the caller can reissue, while holding the
// instance busy for HoldMS (billed) so the reissued request cannot land on
// it — otherwise it runs the workload.
type ProbeBehavior struct {
	// Work runs when the instance's CPU is acceptable.
	Work WorkBehavior
	// Banned is the bitmask of refused CPU kinds. A mask (not a map) keeps
	// the routing hot path allocation-free: the caller builds it once and
	// every issued invocation copies one word.
	Banned cpu.Mask
	// HoldMS is how long a declining instance is held (default 150 ms).
	HoldMS float64
	// KeepOnDecline returns the declining instance to the warm pool. By
	// default a declining function terminates its execution environment
	// (exiting the runtime process after responding, which platforms
	// honour by tearing the instance down). Termination is what keeps
	// retries convergent: a recycled banned instance would be warm-reused
	// by the very retry it triggered, feeding a self-sustaining decline
	// loop.
	KeepOnDecline bool
}

func (ProbeBehavior) isBehavior() {}

func (p ProbeBehavior) holdMS() float64 {
	if p.HoldMS <= 0 {
		return 150
	}
	return p.HoldMS
}

// ProbeOutcome is the Value a ProbeBehavior response carries.
type ProbeOutcome struct {
	// Ran is true when the workload executed; false when the instance
	// declined because its CPU was banned.
	Ran bool
	// RuntimeMS is the workload execution time (0 when declined).
	RuntimeMS float64
}

// probeDecisionMS is the time the in-function CPU check takes.
const probeDecisionMS = 2

// runProbe handles ProbeBehavior execution: it is invoked from the arrive
// path once the instance is initialized. It returns true when it fully
// handled the request (decline path), false when the caller should run the
// workload normally.
func (c *Cloud) runProbe(cl call, sent time.Time, az *AZ,
	dep *Deployment, fi *FI, cold, cached bool, started time.Time,
	b ProbeBehavior) bool {
	// The in-function check reads cpuinfo, like the routing logic the
	// paper bakes into its dynamic functions.
	kind, _, err := cpu.ParseCPUInfo(cpu.CPUInfo(fi.host.kind, dep.vcpus()))
	if err != nil || !b.Banned.Has(kind) {
		return false
	}
	holdMS := b.holdMS()
	price := c.prices[az.region.spec.Provider]
	cost := price.Cost(dep.memoryMB, holdMS)
	c.meter.ChargeIn(cl.req.Account, az.region.spec.Name, cost)

	// Respond as soon as the decision is made so the caller can reissue...
	az.env.Schedule(time.Duration(probeDecisionMS*float64(time.Millisecond)), func() {
		profile, perr := saaf.Collect(cpu.CPUInfo(fi.host.kind, dep.vcpus()), fi.id, fi.host.id, cold, holdMS)
		c.respond(cl, az, Response{
			Err:           perr,
			FI:            fi.id,
			Host:          fi.host.id,
			CPU:           kind,
			Cold:          cold,
			PayloadCached: cached,
			Sent:          sent,
			Started:       started,
			Ended:         az.env.Now(),
			BilledMS:      holdMS,
			CostUSD:       cost,
			Profile:       profile,
			Value:         ProbeOutcome{Ran: false},
		})
	})
	// ...but hold the instance (and the quota slot) for the full,
	// billed hold so the reissued request lands elsewhere. Afterwards the
	// instance self-terminates unless KeepOnDecline is set.
	az.env.Schedule(time.Duration(holdMS*float64(time.Millisecond)), func() {
		az.region.inflight[cl.req.Account]--
		if b.KeepOnDecline {
			az.releaseFI(fi)
		} else {
			az.destroyFI(fi)
		}
	})
	return true
}
