package cloudsim

import (
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// Behavior describes what a deployment executes per invocation.
//
// Sleep and Work behaviors run on the simulator's fast path (pure events,
// no goroutine); Handler behaviors run as a cooperative process and may
// perform nested invocations — that is how the sampler's recursive
// fan-out tree is built.
type Behavior interface {
	isBehavior()
}

// SleepBehavior pauses for a fixed duration, like the paper's sampling
// functions that sleep to pin concurrent requests on unique instances.
type SleepBehavior struct {
	D time.Duration
}

func (SleepBehavior) isBehavior() {}

// WorkBehavior executes one Table-1 workload; its simulated runtime follows
// the workload's cost model on the host CPU the instance landed on.
type WorkBehavior struct {
	Workload workload.ID
	// Scale multiplies the workload's base runtime (0 means 1).
	Scale float64
	// ExtraMS adds fixed overhead (payload decode, framework time).
	ExtraMS float64
}

func (WorkBehavior) isBehavior() {}

func (w WorkBehavior) scale() float64 {
	if w.Scale <= 0 {
		return 1
	}
	return w.Scale
}

// HandlerBehavior runs fn as a cooperative process with full access to the
// instance context, including nested invocations.
type HandlerBehavior struct {
	Fn Handler
}

func (HandlerBehavior) isBehavior() {}

// Handler is the body of a HandlerBehavior deployment.
type Handler func(ctx *Ctx, req Request) (any, error)

// Ctx is what a running handler can see and do from inside its function
// instance. Methods must only be called from the handler's own process.
type Ctx struct {
	cloud *Cloud
	az    *AZ
	dep   *Deployment
	fi    *FI
	proc  *sim.Proc
	cold  bool
}

// Sleep occupies the instance for d (billed).
func (c *Ctx) Sleep(d time.Duration) { c.proc.Sleep(d) }

// Compute executes workload w on this instance, occupying it for the
// modeled duration, and returns that duration.
func (c *Ctx) Compute(w WorkBehavior) time.Duration {
	d := c.cloud.modelRuntime(c.az, c.dep, c.fi.host, w)
	c.proc.Sleep(d)
	return d
}

// Invoke performs a nested invocation (intra-cloud latency applies when the
// request has no client location) and blocks until it completes.
func (c *Ctx) Invoke(req Request) Response {
	return c.cloud.Invoke(c.proc, req)
}

// InvokeAsync starts a nested invocation and returns an event that triggers
// with its Response; wait on it with Wait. Handlers use this to fan out
// child invocations in parallel, as the sampler's branching tree does. The
// child is invoked from this instance's zone, so its network path — and
// under a sharded engine, the shard crossing — starts here.
func (c *Ctx) InvokeAsync(req Request) *sim.Event {
	ev := sim.NewEvent(c.az.env)
	c.cloud.StartInvokeFrom(c.az.env, req, func(r Response) { ev.Trigger(r) })
	return ev
}

// Wait blocks the handler until ev triggers and returns the Response it
// carried.
func (c *Ctx) Wait(ev *sim.Event) Response {
	v := c.proc.Wait(ev)
	r, ok := v.(Response)
	if !ok {
		return Response{Err: ErrBadRequest}
	}
	return r
}

// CPUInfo returns the /proc/cpuinfo content visible inside the instance.
func (c *Ctx) CPUInfo() string {
	return cpu.CPUInfo(c.fi.host.kind, c.dep.vcpus())
}

// FIID returns the instance identifier.
func (c *Ctx) FIID() string { return c.fi.id }

// HostID returns the host identifier visible to the guest.
func (c *Ctx) HostID() string { return c.fi.host.id }

// Cold reports whether this invocation cold-started the instance.
func (c *Ctx) Cold() bool { return c.cold }

// Now returns the current virtual time on this instance's zone.
func (c *Ctx) Now() time.Time { return c.az.env.Now() }

// CacheHas reports whether a payload hash was already decoded on this
// instance, and CachePut records one — the dynamic-function payload cache
// (§3.2).
func (c *Ctx) CacheHas(hash string) bool {
	_, ok := c.fi.cache[hash]
	return ok
}

// CachePut records a decoded payload hash on this instance.
func (c *Ctx) CachePut(hash string) {
	if c.fi.cache == nil {
		c.fi.cache = make(map[string]struct{})
	}
	c.fi.cache[hash] = struct{}{}
}
