package cloudsim

import (
	"skyfaas/internal/metrics"
)

// azMetrics caches one zone's instrumentation series. Series are resolved
// once at zone construction so the per-invocation hot path touches only
// lock-free atomics; with no registry configured every handle is nil and
// every operation a no-op.
type azMetrics struct {
	invocations   *metrics.Counter
	coldStarts    *metrics.Counter
	failThrottled *metrics.Counter
	failSaturated *metrics.Counter
	failBadReq    *metrics.Counter
	failHandler   *metrics.Counter
	saturation    *metrics.Counter
	faultOutage   *metrics.Counter
	faultThrottle *metrics.Counter
	preWarms      *metrics.Counter
	liveFIs       *metrics.Gauge
	billedMS      *metrics.Histogram
	coldStartMS   *metrics.Histogram
}

func newAZMetrics(r *metrics.Registry, az string) azMetrics {
	azL := metrics.L("az", az)
	failures := func(reason string) *metrics.Counter {
		return r.Counter("sky_cloudsim_failures_total",
			"invocations that failed, by zone and cause", azL, metrics.L("reason", reason))
	}
	return azMetrics{
		invocations: r.Counter("sky_cloudsim_invocations_total",
			"invocations that reached the zone", azL),
		coldStarts: r.Counter("sky_cloudsim_cold_starts_total",
			"invocations that initialized a fresh function instance", azL),
		failThrottled: failures("throttled"),
		failSaturated: failures("saturated"),
		failBadReq:    failures("bad_request"),
		failHandler:   failures("handler"),
		saturation: r.Counter("sky_cloudsim_saturation_events_total",
			"placement attempts that found no host capacity", azL),
		faultOutage: r.Counter("sky_cloudsim_chaos_rejections_total",
			"requests rejected by an injected fault, by zone and fault type",
			azL, metrics.L("fault", "outage")),
		faultThrottle: r.Counter("sky_cloudsim_chaos_rejections_total",
			"requests rejected by an injected fault, by zone and fault type",
			azL, metrics.L("fault", "throttle_storm")),
		preWarms: r.Counter("sky_cloudsim_prewarms_total",
			"instances provisioned by the warm-pool actuator", azL),
		liveFIs: r.Gauge("sky_cloudsim_live_fis",
			"currently provisioned function instances", azL),
		billedMS: r.Histogram("sky_cloudsim_billed_ms",
			"billed duration of completed invocations (milliseconds)", nil, azL),
		coldStartMS: r.Histogram("sky_coldstart_ms",
			"request-path cold-start initialization latency (milliseconds)", nil, azL),
	}
}
