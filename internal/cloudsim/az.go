package cloudsim

import (
	"fmt"
	"math"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
)

// Host is one provisioned machine (a bare-metal instance hosting microVMs).
// Every function instance placed on a host observes the host's CPU.
type Host struct {
	id    string
	kind  cpu.Kind
	arch  cpu.Arch
	slots int // FI capacity
	used  int // live FIs
}

// ID returns the platform-assigned host identifier a guest can observe.
func (h *Host) ID() string { return h.id }

// Kind returns the host's processor kind. Only the saaf path and tests may
// consult this; samplers must infer it from cpuinfo.
func (h *Host) Kind() cpu.Kind { return h.kind }

// FI is a function instance: an execution environment bound to one
// deployment, persisting for the keep-alive window after its last use.
type FI struct {
	id        string
	host      *Host
	dep       *Deployment
	busy      bool
	destroyed bool
	idleGen   uint64 // bumped on every release; validates expiry timers
	uses      int
	// cache holds dynamic-function payload hashes already decoded on this
	// instance (§3.2's per-FI payload cache).
	cache map[string]struct{}
}

// ID returns the instance identifier (SAAF's uuid).
func (f *FI) ID() string { return f.id }

// Host returns the backing host.
func (f *FI) Host() *Host { return f.host }

// Uses returns how many invocations this instance has served.
func (f *FI) Uses() int { return f.uses }

// Deployment is one function deployed to one availability zone.
type Deployment struct {
	az       *AZ
	name     string
	memoryMB int
	arch     cpu.Arch
	behavior Behavior
	dynamic  bool
	codeHash string
	warm     []*FI // idle instances, reused LIFO like real platforms
	// floor is the warm-pool floor: keep-alive expiry holds this many idle
	// instances alive instead of reaping them (see armExpiry). Set via
	// AZ.SetWarmFloor; 0 restores pure keep-alive semantics.
	floor int
	// floorAccount / floorSince track who pays for floor-held capacity and
	// since when. StartEnsureWarm settles the accrued hold charge on every
	// actuation (see settleWarmHold); a floor set directly via SetWarmFloor
	// with no ensure-warm actuation is never billed.
	floorAccount string
	floorSince   time.Time
	// live counts this deployment's provisioned instances (busy, idle, and
	// initializing) so the warm-pool sizer can compute provisioning deficits
	// without scanning hosts.
	live int
}

// warmIdle counts the deployment's idle warm instances. The warm slice
// retains destroyed entries until acquireFI pops them, so a scan with
// filtering is required.
func (d *Deployment) warmIdle() int {
	n := 0
	for _, fi := range d.warm {
		if !fi.destroyed && !fi.busy {
			n++
		}
	}
	return n
}

// Name returns the function name (unique within its AZ).
func (d *Deployment) Name() string { return d.name }

// MemoryMB returns the deployment's memory setting.
func (d *Deployment) MemoryMB() int { return d.memoryMB }

// AZName returns the owning availability zone's name.
func (d *Deployment) AZName() string { return d.az.spec.Name }

// vcpus returns the vCPUs the platform grants this memory setting.
func (d *Deployment) vcpus() int {
	v := int(math.Round(float64(d.memoryMB) / 1769))
	if v < 1 {
		return 1
	}
	if v > 6 {
		return 6
	}
	return v
}

// AZ is the live state of one availability zone: a finite, slowly drifting
// pool of heterogeneous hosts.
type AZ struct {
	cloud  *Cloud
	region *Region
	// env is the event shard this zone runs on (the region's shard). All of
	// the zone's mutable state — pools, warm lists, fault flags, its rng
	// stream — is only ever touched from events on this env.
	env         *sim.Env
	spec        AZSpec
	rand        *rng.Stream
	hosts       []*Host
	armHosts    []*Host
	deployments map[string]*Deployment
	targetMix   map[cpu.Kind]float64
	baseMix     map[cpu.Kind]float64 // day-0 mix, anchor for mean reversion
	baseHosts   int                  // day-0 x86 host count, anchor for capacity jitter
	liveFIs     int
	hostSeq     int
	fiSeq       int
	scaleUpUsed bool
	fault       faultState
	m           azMetrics
}

func newAZ(c *Cloud, region *Region, spec AZSpec) *AZ {
	az := &AZ{
		cloud:       c,
		region:      region,
		env:         region.env,
		spec:        spec,
		rand:        c.root.Split("az/" + spec.Name),
		deployments: make(map[string]*Deployment),
		targetMix:   normalizeMix(spec.Mix),
		baseMix:     normalizeMix(spec.Mix),
		m:           newAZMetrics(c.opts.Metrics, spec.Name),
	}
	hostFIs := spec.hostFIs()
	n := spec.PoolFIs / hostFIs
	if n < 1 {
		n = 1
	}
	az.baseHosts = n
	for i := 0; i < n; i++ {
		az.addHost(az.drawKind(az.targetMix), cpu.X86, hostFIs)
	}
	for i := 0; i < spec.ArmPoolFIs/hostFIs; i++ {
		az.addHost(cpu.Graviton, cpu.ARM, hostFIs)
	}
	return az
}

func (s AZSpec) hostFIs() int {
	if s.HostFIs > 0 {
		return s.HostFIs
	}
	return 128
}

// Name returns the zone name, e.g. "us-west-1a".
func (az *AZ) Name() string { return az.spec.Name }

// Region returns the owning region.
func (az *AZ) Region() *Region { return az.region }

// Env returns the event shard the zone runs on. Anything that mutates zone
// state (fault windows, drift bursts) must schedule here.
func (az *AZ) Env() *sim.Env { return az.env }

// Spec returns the zone's static specification.
func (az *AZ) Spec() AZSpec { return az.spec }

// LiveFIs returns the number of currently provisioned function instances.
func (az *AZ) LiveFIs() int { return az.liveFIs }

// HostCount returns the number of x86 hosts currently provisioned.
func (az *AZ) HostCount() int { return len(az.hosts) }

// CapacityFIs returns the total x86 FI slots currently provisioned.
func (az *AZ) CapacityFIs() int {
	total := 0
	for _, h := range az.hosts {
		total += h.slots
	}
	return total
}

// TrueMix returns the ground-truth slot-weighted CPU distribution of the
// zone's x86 pool. It exists so experiments can score characterization
// error; sampling code must never call it.
func (az *AZ) TrueMix() map[cpu.Kind]float64 {
	counts := make(map[cpu.Kind]float64)
	total := 0.0
	for _, h := range az.hosts {
		counts[h.kind] += float64(h.slots)
		total += float64(h.slots)
	}
	if total == 0 {
		return counts
	}
	for k := range counts {
		counts[k] /= total
	}
	return counts
}

func (az *AZ) addHost(kind cpu.Kind, arch cpu.Arch, slots int) *Host {
	az.hostSeq++
	h := &Host{
		id:    fmt.Sprintf("vm-%s-%d", az.spec.Name, az.hostSeq),
		kind:  kind,
		arch:  arch,
		slots: slots,
	}
	if arch == cpu.ARM {
		az.armHosts = append(az.armHosts, h)
	} else {
		az.hosts = append(az.hosts, h)
	}
	return h
}

func (az *AZ) drawKind(mix map[cpu.Kind]float64) cpu.Kind {
	kinds, weights := mixSlices(mix)
	if len(kinds) == 0 {
		return cpu.Xeon25
	}
	return kinds[az.rand.WeightedChoice(weights)]
}

// deploy registers a function in this zone.
func (az *AZ) deploy(name string, cfg DeployConfig) (*Deployment, error) {
	if _, exists := az.deployments[name]; exists {
		return nil, fmt.Errorf("%w: %q in %s", ErrDeploymentExists, name, az.spec.Name)
	}
	if cfg.MemoryMB <= 0 {
		return nil, fmt.Errorf("%w: deployment %q: non-positive memory", ErrBadRequest, name)
	}
	arch := cfg.Arch
	if arch == 0 {
		arch = cpu.X86
	}
	d := &Deployment{
		az:       az,
		name:     name,
		memoryMB: cfg.MemoryMB,
		arch:     arch,
		behavior: cfg.Behavior,
		dynamic:  cfg.Dynamic,
		codeHash: cfg.CodeHash,
	}
	az.deployments[name] = d
	return d, nil
}

// acquireFI returns an instance to run one request on, reusing a warm
// instance when available and otherwise placing a new one.
func (az *AZ) acquireFI(dep *Deployment) (*FI, bool, error) {
	// LIFO reuse: most recently released first, like real platforms.
	for n := len(dep.warm); n > 0; n = len(dep.warm) {
		fi := dep.warm[n-1]
		dep.warm = dep.warm[:n-1]
		if fi.destroyed || fi.busy {
			continue
		}
		fi.busy = true
		fi.idleGen++
		return fi, false, nil
	}
	host := az.placeHost(dep.arch)
	if host == nil {
		az.m.saturation.Inc()
		az.maybeScaleUp()
		return nil, false, ErrSaturated
	}
	fi := az.provisionFI(dep, host)
	return fi, true, nil
}

// provisionFI creates a new busy instance on host and updates the zone's and
// deployment's live accounting. Shared by the cold-start path and PreWarm.
func (az *AZ) provisionFI(dep *Deployment, host *Host) *FI {
	host.used++
	az.liveFIs++
	dep.live++
	az.m.liveFIs.Set(float64(az.liveFIs))
	az.fiSeq++
	return &FI{
		id:   fmt.Sprintf("fi-%s-%d", az.spec.Name, az.fiSeq),
		host: host,
		dep:  dep,
		busy: true,
	}
}

// placeHost picks the host for a new instance with power-of-k-choices
// packing: sample k random hosts with free capacity and take the most
// occupied. Platforms bin-pack microVMs for utilization, but only
// statistically — this policy clusters a poll's instances onto a subset of
// hosts (which is why single polls misestimate a zone's mix, Fig. 5) while
// still letting a retried request escape a host whose CPU was banned.
func (az *AZ) placeHost(arch cpu.Arch) *Host {
	pool := az.hosts
	if arch == cpu.ARM {
		pool = az.armHosts
	}
	if len(pool) == 0 {
		return nil
	}
	const k = 4
	var best *Host
	found := 0
	for tries := 0; tries < 6*k && found < k; tries++ {
		h := pool[az.rand.Intn(len(pool))]
		if h.used >= h.slots {
			continue
		}
		found++
		if best == nil || h.used > best.used {
			best = h
		}
	}
	if best != nil {
		return best
	}
	// Near saturation random probes miss; fall back to a full scan.
	for _, h := range pool {
		if h.used < h.slots {
			return h
		}
	}
	return nil
}

// releaseFI returns an instance to the warm pool and arms its keep-alive
// expiry.
func (az *AZ) releaseFI(fi *FI) {
	if fi.destroyed {
		return
	}
	fi.busy = false
	fi.uses++
	fi.idleGen++
	fi.dep.warm = append(fi.dep.warm, fi)
	az.armExpiry(fi)
}

// armExpiry schedules the keep-alive reaping of an idle instance, validated
// by the idleGen captured now: any acquire before the timer fires bumps the
// generation and voids it. An instance held by the deployment's warm-pool
// floor is left alive *without* re-arming — it becomes timerless, so a
// drained event queue can terminate; SetWarmFloor re-arms every idle
// instance when the floor changes, which is what eventually reaps the
// excess after a floor is lowered.
func (az *AZ) armExpiry(fi *FI) {
	gen := fi.idleGen
	az.env.Schedule(az.cloud.opts.KeepAlive, func() {
		if fi.destroyed || fi.busy || fi.idleGen != gen {
			return
		}
		if fi.dep.floor > 0 && fi.dep.warmIdle() <= fi.dep.floor {
			return
		}
		az.destroyFI(fi)
	})
}

func (az *AZ) destroyFI(fi *FI) {
	if fi.destroyed {
		return
	}
	fi.destroyed = true
	fi.host.used--
	az.liveFIs--
	fi.dep.live--
	az.m.liveFIs.Set(float64(az.liveFIs))
}

// contention returns the diurnal load factor at t: 1 at the quietest hour,
// 1+ContentionAmp at the zone's peak hour ("the Night Shift" effect).
func (az *AZ) contention(t time.Time) float64 {
	if az.spec.ContentionAmp == 0 {
		return 1
	}
	h := float64(t.UTC().Hour()) + float64(t.UTC().Minute())/60
	phase := 2 * math.Pi * (h - float64(az.spec.PeakHourUTC)) / 24
	return 1 + az.spec.ContentionAmp*(0.5+0.5*math.Cos(phase))
}

// driftDaily reprovisions the pool for a new day: the target mix takes a
// random-walk step, a volatility-dependent fraction of idle hosts is
// replaced with hosts drawn from the new target, and total capacity
// jitters. Stable zones (sa-east-1a, eu-north-1a) barely move; volatile
// zones (ca-central-1a, us-west-1*) can shift 20-50% in a day (§4.4).
func (az *AZ) driftDaily() {
	az.scaleUpUsed = false
	if az.spec.MixWalk > 0 {
		az.walkTargetMix(az.spec.MixWalk)
	}
	if az.spec.DailyDrift > 0 {
		frac := az.spec.DailyDrift * (0.5 + az.rand.Float64())
		az.replaceIdleHosts(frac)
	}
	if az.spec.CapJitter > 0 {
		az.jitterCapacity()
	}
}

// driftHourly applies intra-day churn for zones with hourly volatility
// (us-west-1b in the paper's Fig. 8): small continuous replacement with
// occasional large excursions. Excursions draw from a transient perturbed
// mix and do not move the zone's target, so the zone snaps back within
// hours — matching Fig. 8's 22-of-24 hours near the baseline.
func (az *AZ) driftHourly() {
	if az.spec.HourlyDrift <= 0 {
		return
	}
	if az.rand.Bool(0.08) {
		az.excursion()
		return
	}
	az.replaceIdleHosts(az.spec.HourlyDrift)
}

// excursion swaps a sizeable chunk of the pool to a perturbed mix for
// roughly an hour, then restores the swapped hosts — the short-lived
// capacity reshuffles behind Fig. 8's isolated bad hours.
func (az *AZ) excursion() {
	perturbed := walkMix(az.rand, az.targetMix, 3*az.spec.MixWalk)
	type swap struct {
		host *Host
		kind cpu.Kind
	}
	var swapped []swap
	for _, h := range az.hosts {
		if h.used == 0 && az.rand.Bool(0.35) {
			swapped = append(swapped, swap{host: h, kind: h.kind})
			h.kind = az.drawKind(perturbed)
		}
	}
	az.env.Schedule(55*time.Minute, func() {
		for _, s := range swapped {
			if s.host.used == 0 {
				s.host.kind = s.kind
			}
		}
	})
}

// walkTargetMix takes a mean-reverting random-walk step: shares are
// perturbed log-normally, then pulled back toward the day-0 mix. Reversion
// keeps volatile zones fluctuating (the paper's 20-50% day-over-day APE)
// without collapsing onto a single CPU type over long horizons.
func (az *AZ) walkTargetMix(step float64) {
	walked := walkMix(az.rand, az.targetMix, step)
	const reversion = 0.15
	next := make(map[cpu.Kind]float64, len(az.baseMix))
	for _, k := range cpu.Kinds() { // stable order: map iteration would
		base, ok := az.baseMix[k] // randomize float rounding per process
		if !ok {
			continue
		}
		next[k] = (1-reversion)*walked[k] + reversion*base
	}
	az.targetMix = normalizeMix(next)
}

// walkMix perturbs each share log-normally. Iteration follows the catalog
// order, never Go's randomized map order: each share must receive the same
// RNG draw on every run for replays to be bit-identical.
func walkMix(rand *rng.Stream, mix map[cpu.Kind]float64, step float64) map[cpu.Kind]float64 {
	next := make(map[cpu.Kind]float64, len(mix))
	for _, k := range cpu.Kinds() {
		share, ok := mix[k]
		if !ok {
			continue
		}
		next[k] = share * rand.LogNorm(0, step)
	}
	return normalizeMix(next)
}

func (az *AZ) replaceIdleHosts(frac float64) {
	az.replaceIdleHostsFrom(frac, az.targetMix)
}

func (az *AZ) replaceIdleHostsFrom(frac float64, mix map[cpu.Kind]float64) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	for _, h := range az.hosts {
		if h.used == 0 && az.rand.Bool(frac) {
			h.kind = az.drawKind(mix)
		}
	}
}

func (az *AZ) jitterCapacity() {
	target := int(az.rand.Jitter(float64(az.baseHosts), az.spec.CapJitter))
	if target < 1 {
		target = 1
	}
	hostFIs := az.spec.hostFIs()
	for len(az.hosts) < target {
		az.addHost(az.drawKind(az.targetMix), cpu.X86, hostFIs)
	}
	// Shrink by removing empty hosts only.
	for i := len(az.hosts) - 1; i >= 0 && len(az.hosts) > target; i-- {
		if az.hosts[i].used == 0 {
			az.hosts = append(az.hosts[:i], az.hosts[i+1:]...)
		}
	}
}

// maybeScaleUp models the platform slowly reacting to saturation: once per
// day, a zone with a reserve pool brings additional hosts online shortly
// after capacity is exhausted. Zones whose reserve mix differs from their
// target mix are the ones EX-3 saw "anomalous spikes" from — the late
// hosts reveal previously unseen hardware.
func (az *AZ) maybeScaleUp() {
	if az.scaleUpUsed || az.spec.ReserveFrac <= 0 {
		return
	}
	az.scaleUpUsed = true
	mix := az.targetMix
	if len(az.spec.ReserveMix) > 0 {
		mix = normalizeMix(az.spec.ReserveMix)
	}
	count := int(float64(az.baseHosts) * az.spec.ReserveFrac)
	if count < 1 {
		count = 1
	}
	hostFIs := az.spec.hostFIs()
	az.env.Schedule(az.cloud.opts.ScaleUpDelay, func() {
		for i := 0; i < count; i++ {
			az.addHost(az.drawKind(mix), cpu.X86, hostFIs)
		}
	})
}

// normalizeMix returns mix scaled to sum to 1, dropping non-positive
// entries. Summation follows the catalog order so floating-point rounding
// is identical on every run.
func normalizeMix(mix map[cpu.Kind]float64) map[cpu.Kind]float64 {
	out := make(map[cpu.Kind]float64, len(mix))
	var total float64
	for _, k := range cpu.Kinds() {
		if v := mix[k]; v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return out
	}
	for _, k := range cpu.Kinds() {
		if v := mix[k]; v > 0 {
			out[k] = v / total
		}
	}
	return out
}

// mixSlices flattens a mix into parallel slices with a deterministic order.
func mixSlices(mix map[cpu.Kind]float64) ([]cpu.Kind, []float64) {
	kinds := make([]cpu.Kind, 0, len(mix))
	for _, k := range cpu.Kinds() {
		if mix[k] > 0 {
			kinds = append(kinds, k)
		}
	}
	weights := make([]float64, len(kinds))
	for i, k := range kinds {
		weights[i] = mix[k]
	}
	return kinds, weights
}
