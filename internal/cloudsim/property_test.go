package cloudsim

import (
	"math"
	"testing"
	"testing/quick"

	"skyfaas/internal/cpu"
	"skyfaas/internal/rng"
)

// Property: billing is monotone in runtime and memory, and never below the
// per-request fee.
func TestCostProperties(t *testing.T) {
	p := defaultPrices()[AWS]
	if err := quick.Check(func(memRaw uint16, msA, msB float64) bool {
		mem := int(memRaw%10240) + 128
		a := math.Abs(math.Mod(msA, 1e6))
		b := math.Abs(math.Mod(msB, 1e6))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		costLo, costHi := p.Cost(mem, lo), p.Cost(mem, hi)
		if costLo > costHi {
			return false // monotone in runtime
		}
		if p.Cost(mem, hi) > p.Cost(mem*2, hi) {
			return false // monotone in memory
		}
		return costLo >= p.PerRequest
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: billing granularity only ever rounds up, by less than one unit.
func TestCostGranularityProperty(t *testing.T) {
	p := PriceModel{PerGBSecond: 0.0000166667, GranularityMS: 100}
	exact := PriceModel{PerGBSecond: 0.0000166667}
	if err := quick.Check(func(msRaw float64) bool {
		ms := math.Abs(math.Mod(msRaw, 1e6))
		if math.IsNaN(ms) {
			return true
		}
		rounded := p.Cost(1024, ms)
		raw := exact.Cost(1024, ms)
		oneUnit := exact.Cost(1024, p.GranularityMS)
		return rounded >= raw-1e-15 && rounded <= raw+oneUnit
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalizeMix always yields a distribution (sums to 1, no
// negatives) or an empty map, and preserves share ratios.
func TestNormalizeMixProperties(t *testing.T) {
	kinds := cpu.Kinds()
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		s := rng.New(seed)
		n := int(nRaw%uint8(len(kinds))) + 1
		mix := make(map[cpu.Kind]float64, n)
		for i := 0; i < n; i++ {
			// Include occasional zero/negative entries, which must drop.
			v := s.Float64()*10 - 1
			mix[kinds[i]] = v
		}
		out := normalizeMix(mix)
		var sum float64
		for k, v := range out {
			if v <= 0 {
				return false
			}
			if mix[k] <= 0 {
				return false // non-positive input survived
			}
			sum += v
		}
		if len(out) == 0 {
			// Legal only when no input share was positive.
			for _, v := range mix {
				if v > 0 {
					return false
				}
			}
			return true
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Ratio preservation between any two surviving kinds.
		var prev cpu.Kind
		for k := range out {
			if prev != 0 {
				want := mix[k] / mix[prev]
				got := out[k] / out[prev]
				if math.Abs(want-got) > 1e-6*math.Max(1, math.Abs(want)) {
					return false
				}
			}
			prev = k
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: drawKind only ever returns kinds with positive share.
func TestDrawKindProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, aw, bw uint8) bool {
		az := &AZ{rand: rng.New(seed)}
		mix := map[cpu.Kind]float64{
			cpu.Xeon25: float64(aw),
			cpu.Xeon30: float64(bw),
			cpu.EPYC:   0, // never drawable
		}
		for i := 0; i < 50; i++ {
			k := az.drawKind(normalizeMix(mix))
			if k == cpu.EPYC {
				return false
			}
			if aw == 0 && bw != 0 && k != cpu.Xeon30 {
				return false
			}
			if bw == 0 && aw != 0 && k != cpu.Xeon25 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: initMemoryFactor is bounded and monotone non-increasing in
// memory.
func TestInitMemoryFactorProperty(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		memA := int(a%20480) + 64
		memB := int(b%20480) + 64
		fa, fb := initMemoryFactor(memA), initMemoryFactor(memB)
		if fa < 0.7 || fa > 2.5 {
			return false
		}
		if memA <= memB && fa < fb {
			return false // more memory must never slow init
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
