package cloudsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

var testEpoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// testWorld builds a single-region, single-AZ cloud for mechanism tests.
func testWorld(t *testing.T, azSpec AZSpec, opts Options) (*sim.Env, *Cloud) {
	t.Helper()
	env := sim.NewEnv(testEpoch)
	catalog := []RegionSpec{{
		Provider: AWS,
		Name:     "test-region",
		Loc:      geo.Coord{Lat: 40, Lon: -80},
		AZs:      []AZSpec{azSpec},
	}}
	if opts.HorizonDays == 0 {
		opts.HorizonDays = 1
	}
	return env, New(env, 42, catalog, opts)
}

func plainAZ(pool int) AZSpec {
	return AZSpec{
		Name:    "test-az-1a",
		PoolFIs: pool,
		Mix:     mix(0.5, 0.2, 0.25, 0.05),
	}
}

func deploySleep(t *testing.T, c *Cloud, name string, d time.Duration) {
	t.Helper()
	if _, err := c.Deploy("test-az-1a", name, DeployConfig{
		MemoryMB: 2048,
		Behavior: SleepBehavior{D: d},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeSleepBasics(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{})
	deploySleep(t, c, "fn", 250*time.Millisecond)
	var resp Response
	env.Go("client", func(p *sim.Proc) error {
		resp = c.Invoke(p, Request{Account: "acct", AZ: "test-az-1a", Function: "fn"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatalf("invoke failed: %v", resp.Err)
	}
	if !resp.Cold {
		t.Error("first invocation should cold start")
	}
	if resp.BilledMS < 250 || resp.BilledMS > 300 {
		t.Errorf("billed %v ms, want ~250", resp.BilledMS)
	}
	if resp.FI == "" || resp.Host == "" {
		t.Error("missing FI/host ids")
	}
	if !resp.CPU.Valid() {
		t.Errorf("invalid CPU kind %v", resp.CPU)
	}
	if resp.Profile.UUID != resp.FI || resp.Profile.Kind != resp.CPU {
		t.Error("profile inconsistent with response")
	}
	if resp.CostUSD <= 0 {
		t.Error("no cost recorded")
	}
	if got := c.Meter().Total("acct"); math.Abs(got-resp.CostUSD) > 1e-12 {
		t.Errorf("meter %v != response cost %v", got, resp.CostUSD)
	}
}

func TestWarmReuse(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{})
	deploySleep(t, c, "fn", 10*time.Millisecond)
	var first, second Response
	env.Go("client", func(p *sim.Proc) error {
		first = c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn"})
		second = c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !first.OK() || !second.OK() {
		t.Fatalf("errs: %v %v", first.Err, second.Err)
	}
	if second.Cold {
		t.Error("sequential invocation did not reuse the warm instance")
	}
	if first.FI != second.FI {
		t.Errorf("different FIs: %s then %s", first.FI, second.FI)
	}
	if second.Profile.NewContainer != 0 {
		t.Error("profile still claims new container")
	}
}

func TestConcurrentRequestsUseDistinctFIs(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{})
	deploySleep(t, c, "fn", 250*time.Millisecond)
	const n = 100
	fis := make(map[string]int)
	done := 0
	for i := 0; i < n; i++ {
		c.StartInvoke(Request{Account: "a", AZ: "test-az-1a", Function: "fn"}, func(r Response) {
			if r.OK() {
				fis[r.FI]++
			}
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("%d of %d responses arrived", done, n)
	}
	if len(fis) != n {
		t.Fatalf("%d unique FIs for %d concurrent requests", len(fis), n)
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{KeepAlive: 5 * time.Minute})
	deploySleep(t, c, "fn", 10*time.Millisecond)
	az, _ := c.AZ("test-az-1a")
	env.Go("client", func(p *sim.Proc) error {
		r := c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn"})
		if !r.OK() {
			t.Errorf("invoke: %v", r.Err)
		}
		if az.LiveFIs() != 1 {
			t.Errorf("live FIs after invoke = %d", az.LiveFIs())
		}
		// Within keep-alive the instance persists...
		p.Sleep(4 * time.Minute)
		if az.LiveFIs() != 1 {
			t.Errorf("live FIs at 4min = %d, want 1", az.LiveFIs())
		}
		// ...and a new request reuses it, extending the window.
		r2 := c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn"})
		if r2.Cold {
			t.Error("reuse within keep-alive cold-started")
		}
		p.Sleep(4 * time.Minute)
		if az.LiveFIs() != 1 {
			t.Errorf("live FIs 4min after reuse = %d, want 1 (window extended)", az.LiveFIs())
		}
		p.Sleep(2 * time.Minute)
		if az.LiveFIs() != 0 {
			t.Errorf("live FIs after expiry = %d, want 0", az.LiveFIs())
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSaturationWhenPoolExhausted(t *testing.T) {
	// Pool of 128 slots (1 host), sleep long enough that requests overlap.
	env, c := testWorld(t, plainAZ(128), Options{})
	deploySleep(t, c, "fn", time.Second)
	okCount, satCount := 0, 0
	for i := 0; i < 200; i++ {
		c.StartInvoke(Request{Account: "a", AZ: "test-az-1a", Function: "fn"}, func(r Response) {
			switch {
			case r.OK():
				okCount++
			case errors.Is(r.Err, ErrSaturated):
				satCount++
			default:
				t.Errorf("unexpected error: %v", r.Err)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if okCount != 128 {
		t.Errorf("ok = %d, want 128 (pool capacity)", okCount)
	}
	if satCount != 72 {
		t.Errorf("saturated = %d, want 72", satCount)
	}
}

func TestQuotaThrottling(t *testing.T) {
	env, c := testWorld(t, plainAZ(4096), Options{Quota: 50})
	deploySleep(t, c, "fn", time.Second)
	var okCount, throttled int
	for i := 0; i < 80; i++ {
		c.StartInvoke(Request{Account: "acct", AZ: "test-az-1a", Function: "fn"}, func(r Response) {
			switch {
			case r.OK():
				okCount++
			case errors.Is(r.Err, ErrThrottled):
				throttled++
			default:
				t.Errorf("unexpected error: %v", r.Err)
			}
		})
	}
	// A second account has its own quota.
	var otherOK int
	for i := 0; i < 40; i++ {
		c.StartInvoke(Request{Account: "other", AZ: "test-az-1a", Function: "fn"}, func(r Response) {
			if r.OK() {
				otherOK++
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if okCount != 50 || throttled != 30 {
		t.Errorf("ok/throttled = %d/%d, want 50/30", okCount, throttled)
	}
	if otherOK != 40 {
		t.Errorf("second account ok = %d, want 40 (independent quota)", otherOK)
	}
}

func TestSharedPoolAcrossAccounts(t *testing.T) {
	// The pool is an AZ property: when account A saturates the zone,
	// account B fails immediately — the paper's two-account validation.
	env, c := testWorld(t, plainAZ(128), Options{})
	deploySleep(t, c, "fa", time.Second)
	deploySleep(t, c, "fb", time.Second)
	var aOK int
	for i := 0; i < 128; i++ {
		c.StartInvoke(Request{Account: "acct-a", AZ: "test-az-1a", Function: "fa"}, func(r Response) {
			if r.OK() {
				aOK++
			}
		})
	}
	var bSaturated int
	env.Schedule(100*time.Millisecond, func() {
		for i := 0; i < 50; i++ {
			c.StartInvoke(Request{Account: "acct-b", AZ: "test-az-1a", Function: "fb"}, func(r Response) {
				if errors.Is(r.Err, ErrSaturated) {
					bSaturated++
				}
			})
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if aOK != 128 {
		t.Errorf("first account ok = %d", aOK)
	}
	if bSaturated != 50 {
		t.Errorf("second account saturated = %d, want all 50", bSaturated)
	}
}

func TestWorkloadRuntimeFollowsCPUFactor(t *testing.T) {
	// Single-kind pools let us compare runtimes across CPU kinds.
	runtimeOn := func(kind cpu.Kind) float64 {
		env := sim.NewEnv(testEpoch)
		catalog := []RegionSpec{{
			Provider: AWS, Name: "r", Loc: geo.Coord{},
			AZs: []AZSpec{{
				Name: "r-az", PoolFIs: 512,
				Mix: map[cpu.Kind]float64{kind: 1},
			}},
		}}
		c := New(env, 7, catalog, Options{HorizonDays: 1})
		if _, err := c.Deploy("r-az", "fn", DeployConfig{
			MemoryMB: 4096,
			Behavior: WorkBehavior{Workload: workload.MathService},
		}); err != nil {
			t.Fatal(err)
		}
		var total float64
		n := 40
		gotN := 0
		env.Go("client", func(p *sim.Proc) error {
			for i := 0; i < n; i++ {
				r := c.Invoke(p, Request{Account: "a", AZ: "r-az", Function: "fn"})
				if !r.OK() {
					t.Errorf("invoke on %v: %v", kind, r.Err)
					continue
				}
				total += r.BilledMS
				gotN++
			}
			return nil
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return total / float64(gotN)
	}
	base := runtimeOn(cpu.Xeon25)
	fast := runtimeOn(cpu.Xeon30)
	slow := runtimeOn(cpu.EPYC)
	spec := workload.MustGet(workload.MathService)
	if ratio := fast / base; math.Abs(ratio-spec.CPUFactor(cpu.Xeon30)) > 0.05 {
		t.Errorf("3.0GHz/baseline ratio = %.3f, want ~%.3f", ratio, spec.CPUFactor(cpu.Xeon30))
	}
	if ratio := slow / base; math.Abs(ratio-spec.CPUFactor(cpu.EPYC)) > 0.08 {
		t.Errorf("EPYC/baseline ratio = %.3f, want ~%.3f", ratio, spec.CPUFactor(cpu.EPYC))
	}
}

func TestMemoryStarvedDeploymentRunsSlower(t *testing.T) {
	env, c := testWorld(t, AZSpec{Name: "test-az-1a", PoolFIs: 512, Mix: mix(1, 0, 0, 0)}, Options{})
	for name, mem := range map[string]int{"big": 8192, "small": 512} {
		if _, err := c.Deploy("test-az-1a", name, DeployConfig{
			MemoryMB: mem,
			Behavior: WorkBehavior{Workload: workload.MatrixMultiply},
		}); err != nil {
			t.Fatal(err)
		}
	}
	avg := map[string]float64{}
	env.Go("client", func(p *sim.Proc) error {
		for _, name := range []string{"big", "small"} {
			var sum float64
			for i := 0; i < 20; i++ {
				r := c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: name})
				if !r.OK() {
					t.Errorf("%s: %v", name, r.Err)
				}
				sum += r.BilledMS
			}
			avg[name] = sum / 20
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if avg["small"] < 2*avg["big"] {
		t.Errorf("512MB avg %.0fms not much slower than 8GB avg %.0fms", avg["small"], avg["big"])
	}
}

func TestDynamicWorkOverride(t *testing.T) {
	env, c := testWorld(t, plainAZ(512), Options{})
	if _, err := c.Deploy("test-az-1a", "dyn", DeployConfig{
		MemoryMB: 2048,
		Dynamic:  true,
		Behavior: SleepBehavior{D: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	deploySleep(t, c, "static", time.Millisecond)
	var dynResp, staticResp Response
	env.Go("client", func(p *sim.Proc) error {
		dynResp = c.Invoke(p, Request{
			Account: "a", AZ: "test-az-1a", Function: "dyn",
			Work: WorkBehavior{Workload: workload.Sha1Hash},
		})
		staticResp = c.Invoke(p, Request{
			Account: "a", AZ: "test-az-1a", Function: "static",
			Work: WorkBehavior{Workload: workload.Sha1Hash},
		})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !dynResp.OK() {
		t.Fatalf("dynamic override failed: %v", dynResp.Err)
	}
	if dynResp.BilledMS < 100 {
		t.Errorf("override ignored: billed %.1fms", dynResp.BilledMS)
	}
	if staticResp.OK() || !errors.Is(staticResp.Err, ErrBadRequest) {
		t.Errorf("override on non-dynamic deployment: err = %v, want ErrBadRequest", staticResp.Err)
	}
}

func TestPayloadCacheFlag(t *testing.T) {
	env, c := testWorld(t, plainAZ(512), Options{})
	deploySleepDyn := func() {
		if _, err := c.Deploy("test-az-1a", "dyn", DeployConfig{
			MemoryMB: 2048, Dynamic: true, Behavior: SleepBehavior{D: time.Millisecond},
		}); err != nil {
			t.Fatal(err)
		}
	}
	deploySleepDyn()
	var r1, r2, r3 Response
	env.Go("client", func(p *sim.Proc) error {
		req := Request{Account: "a", AZ: "test-az-1a", Function: "dyn", PayloadHash: "h1"}
		r1 = c.Invoke(p, req)
		r2 = c.Invoke(p, req)
		req.PayloadHash = "h2"
		r3 = c.Invoke(p, req)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if r1.PayloadCached {
		t.Error("first request reported cached payload")
	}
	if !r2.PayloadCached {
		t.Error("second request on same FI+hash not cached")
	}
	if r3.PayloadCached {
		t.Error("different hash reported cached")
	}
}

func TestHandlerBehaviorNestedInvoke(t *testing.T) {
	env, c := testWorld(t, plainAZ(1024), Options{})
	deploySleep(t, c, "leaf", 50*time.Millisecond)
	if _, err := c.Deploy("test-az-1a", "parent", DeployConfig{
		MemoryMB: 2048,
		Behavior: HandlerBehavior{Fn: func(ctx *Ctx, req Request) (any, error) {
			evs := make([]*sim.Event, 3)
			for i := range evs {
				evs[i] = ctx.InvokeAsync(Request{Account: req.Account, AZ: "test-az-1a", Function: "leaf"})
			}
			oks := 0
			for _, ev := range evs {
				if ctx.Wait(ev).OK() {
					oks++
				}
			}
			return oks, nil
		}},
	}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	env.Go("client", func(p *sim.Proc) error {
		resp = c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "parent"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatalf("parent failed: %v", resp.Err)
	}
	if got, ok := resp.Value.(int); !ok || got != 3 {
		t.Fatalf("parent value = %v, want 3 successful children", resp.Value)
	}
	// Parent billed duration covers the children (they ran in parallel,
	// each with its own cold start), not three sleeps in sequence plus
	// three cold starts.
	if resp.BilledMS < 50 || resp.BilledMS > 400 {
		t.Errorf("parent billed %.1fms, want ~50-400 (parallel children)", resp.BilledMS)
	}
}

func TestHandlerCPUInfoMatchesProfile(t *testing.T) {
	env, c := testWorld(t, plainAZ(512), Options{})
	var insideKind cpu.Kind
	if _, err := c.Deploy("test-az-1a", "inspect", DeployConfig{
		MemoryMB: 2048,
		Behavior: HandlerBehavior{Fn: func(ctx *Ctx, req Request) (any, error) {
			k, _, err := cpu.ParseCPUInfo(ctx.CPUInfo())
			insideKind = k
			return nil, err
		}},
	}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	env.Go("client", func(p *sim.Proc) error {
		resp = c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "inspect"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatal(resp.Err)
	}
	if insideKind != resp.CPU {
		t.Errorf("handler saw %v, response says %v", insideKind, resp.CPU)
	}
}

func TestInvokeErrors(t *testing.T) {
	env, c := testWorld(t, plainAZ(512), Options{})
	var badAZ, badFn Response
	env.Go("client", func(p *sim.Proc) error {
		badAZ = c.Invoke(p, Request{Account: "a", AZ: "nope", Function: "fn"})
		badFn = c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "ghost"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(badAZ.Err, ErrNoSuchDeployment) || !errors.Is(badFn.Err, ErrNoSuchDeployment) {
		t.Errorf("errs = %v / %v", badAZ.Err, badFn.Err)
	}
}

func TestDeployValidation(t *testing.T) {
	_, c := testWorld(t, plainAZ(512), Options{})
	if _, err := c.Deploy("test-az-1a", "fn", DeployConfig{MemoryMB: 2048, Behavior: SleepBehavior{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("test-az-1a", "fn", DeployConfig{MemoryMB: 2048, Behavior: SleepBehavior{}}); err == nil {
		t.Error("duplicate deploy accepted")
	}
	if _, err := c.Deploy("test-az-1a", "bad", DeployConfig{Behavior: SleepBehavior{}}); err == nil {
		t.Error("zero-memory deploy accepted")
	}
	if _, err := c.Deploy("ghost-az", "fn", DeployConfig{MemoryMB: 128, Behavior: SleepBehavior{}}); err == nil {
		t.Error("deploy to unknown AZ accepted")
	}
}

func TestClientLatencyApplied(t *testing.T) {
	env, c := testWorld(t, plainAZ(512), Options{})
	deploySleep(t, c, "fn", 10*time.Millisecond)
	seattle, _ := geo.City("seattle")
	var local, remote time.Duration
	env.Go("client", func(p *sim.Proc) error {
		// Warm the instance so neither timed call pays a cold start.
		if r := c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn"}); !r.OK() {
			t.Error(r.Err)
		}
		t0 := env.Now()
		r := c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn"})
		local = env.Now().Sub(t0)
		if !r.OK() {
			t.Error(r.Err)
		}
		t1 := env.Now()
		r = c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn", ClientLoc: &seattle})
		remote = env.Now().Sub(t1)
		if !r.OK() {
			t.Error(r.Err)
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if remote <= local+10*time.Millisecond {
		t.Errorf("remote client round trip %v not slower than intra-cloud %v", remote, local)
	}
}

func TestBillingGranularityAndRates(t *testing.T) {
	p := PriceModel{PerGBSecond: 0.0000166667, PerRequest: 0.0000002, GranularityMS: 1}
	// 2GB for exactly 1 second.
	got := p.Cost(2048, 1000)
	want := 2*0.0000166667 + 0.0000002
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %.10f, want %.10f", got, want)
	}
	// Rounding up to the next millisecond.
	if a, b := p.Cost(1024, 100.2), p.Cost(1024, 101); a != b {
		t.Errorf("100.2ms billed %.12f != 101ms billed %.12f", a, b)
	}
	if p.Cost(1024, 0) != p.PerRequest {
		t.Error("zero-duration cost should be the request fee")
	}
	if p.Cost(1024, -5) != p.PerRequest {
		t.Error("negative duration not clamped")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Charge("a", 0.5)
	m.Charge("a", 0.25)
	m.Charge("b", 1)
	if m.Total("a") != 0.75 || m.Requests("a") != 2 {
		t.Errorf("a: %v/%d", m.Total("a"), m.Requests("a"))
	}
	if m.GrandTotal() != 1.75 {
		t.Errorf("grand total %v", m.GrandTotal())
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestDefaultCatalogShape(t *testing.T) {
	catalog := DefaultCatalog()
	if len(catalog) != 41 {
		t.Fatalf("catalog has %d regions, paper spans 41", len(catalog))
	}
	counts := map[Provider]int{}
	names := map[string]bool{}
	azNames := map[string]bool{}
	for _, r := range catalog {
		counts[r.Provider]++
		if names[r.Name] {
			t.Errorf("duplicate region %s", r.Name)
		}
		names[r.Name] = true
		if len(r.AZs) == 0 {
			t.Errorf("region %s has no AZs", r.Name)
		}
		for _, az := range r.AZs {
			if azNames[az.Name] {
				t.Errorf("duplicate AZ %s", az.Name)
			}
			azNames[az.Name] = true
			if az.PoolFIs <= 0 {
				t.Errorf("AZ %s: empty pool", az.Name)
			}
			if len(az.Mix) == 0 {
				t.Errorf("AZ %s: empty mix", az.Name)
			}
		}
	}
	if counts[AWS] != 29 || counts[IBM] != 8 || counts[DO] != 4 {
		t.Errorf("provider split = %v, want AWS:29 IBM:8 DO:4", counts)
	}
}

func TestCatalogPaperFacts(t *testing.T) {
	catalog := DefaultCatalog()
	byAZ := map[string]AZSpec{}
	for _, r := range catalog {
		for _, az := range r.AZs {
			byAZ[az.Name] = az
		}
	}
	// Every AWS region hosts the 2.5 GHz Xeon; all but af-south-1 host the
	// 3.0 GHz.
	// The paper states these facts at region granularity.
	for _, r := range catalog {
		if r.Provider != AWS {
			continue
		}
		has30 := false
		for _, az := range r.AZs {
			if az.Mix[cpu.Xeon25] <= 0 {
				t.Errorf("%s: missing 2.5GHz Xeon", az.Name)
			}
			if az.Mix[cpu.Xeon30] > 0 {
				has30 = true
			}
		}
		if r.Name == "af-south-1" && has30 {
			t.Errorf("af-south-1 should not host the 3.0GHz Xeon")
		}
		if r.Name != "af-south-1" && !has30 {
			t.Errorf("region %s: missing 3.0GHz Xeon", r.Name)
		}
	}
	// us-east-2a is all-2.5GHz; us-west-2 is 3.0-dominant; il-central-1
	// has the largest EPYC share.
	if m := byAZ["us-east-2a"].Mix; len(m) != 1 || m[cpu.Xeon25] != 1 {
		t.Errorf("us-east-2a mix = %v, want pure 2.5GHz", m)
	}
	if m := byAZ["us-west-2a"].Mix; m[cpu.Xeon30] <= m[cpu.Xeon25] {
		t.Errorf("us-west-2a: 3.0GHz share %v not dominant over %v", m[cpu.Xeon30], m[cpu.Xeon25])
	}
	ilEpyc := byAZ["il-central-1a"].Mix[cpu.EPYC]
	for name, spec := range byAZ {
		if name == "il-central-1a" {
			continue
		}
		if spec.Mix[cpu.EPYC] > ilEpyc {
			t.Errorf("%s EPYC share %v exceeds il-central-1a's %v", name, spec.Mix[cpu.EPYC], ilEpyc)
		}
	}
	// EX-3/EX-4 zones exist.
	for _, name := range []string{
		"ca-central-1a", "eu-north-1a", "ap-northeast-1a", "sa-east-1a",
		"eu-central-1a", "ap-southeast-2a", "us-west-1a", "us-west-1b",
		"us-east-2a", "us-east-2b", "us-east-2c",
	} {
		if _, ok := byAZ[name]; !ok {
			t.Errorf("EX-3 zone %s missing from catalog", name)
		}
	}
	// Capacity relationships from EX-3.
	if byAZ["eu-central-1a"].PoolFIs < 8*byAZ["eu-north-1a"].PoolFIs {
		t.Error("eu-central-1a should sustain ~10x eu-north-1a's calls")
	}
	// Temporal classes from EX-4.
	for _, stable := range []string{"sa-east-1a", "eu-north-1a"} {
		if byAZ[stable].DailyDrift > 0.05 {
			t.Errorf("%s should be temporally stable", stable)
		}
	}
	for _, volatile := range []string{"ca-central-1a", "us-west-1a", "us-west-1b"} {
		if byAZ[volatile].DailyDrift < 0.2 {
			t.Errorf("%s should be volatile", volatile)
		}
	}
	if byAZ["us-west-1b"].HourlyDrift <= 0 {
		t.Error("us-west-1b needs hourly churn for Fig. 8")
	}
}

func TestTrueMixMatchesSpecApproximately(t *testing.T) {
	_, c := testWorld(t, plainAZ(20000), Options{})
	az, _ := c.AZ("test-az-1a")
	truth := az.TrueMix()
	for kind, want := range normalizeMix(plainAZ(0).Mix) {
		got := truth[kind]
		if math.Abs(got-want) > 0.12 {
			t.Errorf("%v share = %.3f, want ~%.3f", kind, got, want)
		}
	}
}

func TestDriftChangesVolatileZoneOnly(t *testing.T) {
	mixDist := func(a, b map[cpu.Kind]float64) float64 {
		var d float64
		for _, k := range cpu.Kinds() {
			d += math.Abs(a[k] - b[k])
		}
		return d / 2
	}
	run := func(daily, walk float64) float64 {
		env := sim.NewEnv(testEpoch)
		spec := plainAZ(20000)
		spec.DailyDrift = daily
		spec.MixWalk = walk
		catalog := []RegionSpec{{Provider: AWS, Name: "r", AZs: []AZSpec{spec}}}
		c := New(env, 99, catalog, Options{HorizonDays: 10})
		az, _ := c.AZ("test-az-1a")
		day0 := az.TrueMix()
		if err := env.RunFor(10 * 24 * time.Hour); err != nil {
			t.Fatal(err)
		}
		return mixDist(day0, az.TrueMix())
	}
	stable := run(stableDrift, stableWalk)
	volatile := run(volatileDrift, volatileWalk)
	if stable > 0.10 {
		t.Errorf("stable zone drifted %.3f over 10 days, want <= 0.10", stable)
	}
	if volatile < stable {
		t.Errorf("volatile drift %.3f not above stable %.3f", volatile, stable)
	}
	if volatile < 0.08 {
		t.Errorf("volatile zone drifted only %.3f over 10 days", volatile)
	}
}

func TestContentionDiurnal(t *testing.T) {
	env, c := testWorld(t, AZSpec{
		Name: "test-az-1a", PoolFIs: 512, Mix: mix(1, 0, 0, 0),
		ContentionAmp: 0.10, PeakHourUTC: 14,
	}, Options{})
	_ = env
	az, _ := c.AZ("test-az-1a")
	peak := az.contention(time.Date(2026, 3, 1, 14, 0, 0, 0, time.UTC))
	trough := az.contention(time.Date(2026, 3, 1, 2, 0, 0, 0, time.UTC))
	if math.Abs(peak-1.10) > 1e-9 {
		t.Errorf("peak contention = %v, want 1.10", peak)
	}
	if math.Abs(trough-1.0) > 1e-9 {
		t.Errorf("trough contention = %v, want 1.0", trough)
	}
}

func TestScaleUpAddsReserveHosts(t *testing.T) {
	env, c := testWorld(t, AZSpec{
		Name: "test-az-1a", PoolFIs: 128,
		Mix:         mix(1, 0, 0, 0),
		ReserveMix:  mix(0, 0, 0, 1),
		ReserveFrac: 1, // double the pool on scale-up, all EPYC
	}, Options{ScaleUpDelay: 10 * time.Second})
	deploySleep(t, c, "fn", 30*time.Second)
	az, _ := c.AZ("test-az-1a")
	before := az.HostCount()
	// Exhaust and keep pushing.
	for i := 0; i < 130; i++ {
		c.StartInvoke(Request{Account: "a", AZ: "test-az-1a", Function: "fn"}, func(Response) {})
	}
	sawEpyc := false
	env.Schedule(20*time.Second, func() {
		if az.HostCount() <= before {
			t.Errorf("no scale-up: hosts %d -> %d", before, az.HostCount())
		}
		if az.TrueMix()[cpu.EPYC] <= 0 {
			t.Error("reserve hosts did not introduce unseen hardware")
		} else {
			sawEpyc = true
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawEpyc {
		t.Error("scale-up check did not run")
	}
}

func TestArmDeploymentsLandOnGraviton(t *testing.T) {
	env, c := testWorld(t, AZSpec{
		Name: "test-az-1a", PoolFIs: 512, ArmPoolFIs: 256, Mix: mix(1, 0, 0, 0),
	}, Options{})
	if _, err := c.Deploy("test-az-1a", "armfn", DeployConfig{
		MemoryMB: 2048, Arch: cpu.ARM, Behavior: SleepBehavior{D: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	env.Go("client", func(p *sim.Proc) error {
		resp = c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "armfn"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatal(resp.Err)
	}
	if resp.CPU != cpu.Graviton {
		t.Errorf("arm deployment ran on %v", resp.CPU)
	}
}

func TestPlacementClustersButCanSpread(t *testing.T) {
	// Statistical packing: a 256-request poll on a 32-host zone should
	// cluster well below uniform spread (256/32 = 8 per host uniformly)
	// yet touch more than one host.
	env, c := testWorld(t, plainAZ(4096), Options{})
	deploySleep(t, c, "fn", time.Second)
	hosts := map[string]int{}
	for i := 0; i < 256; i++ {
		c.StartInvoke(Request{Account: "a", AZ: "test-az-1a", Function: "fn"}, func(r Response) {
			if r.OK() {
				hosts[r.Host]++
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hosts) < 2 {
		t.Errorf("placement used %d hosts; retries could never escape a banned host", len(hosts))
	}
	if len(hosts) >= 30 {
		t.Errorf("placement spread over %d/32 hosts; no packing at all", len(hosts))
	}
	maxLoad := 0
	for _, n := range hosts {
		if n > maxLoad {
			maxLoad = n
		}
	}
	if maxLoad < 16 {
		t.Errorf("heaviest host got %d/256 placements; packing too weak", maxLoad)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		env := sim.NewEnv(testEpoch)
		catalog := []RegionSpec{{Provider: AWS, Name: "r", AZs: []AZSpec{plainAZ(2048)}}}
		c := New(env, 1234, catalog, Options{HorizonDays: 1})
		if _, err := c.Deploy("test-az-1a", "fn", DeployConfig{
			MemoryMB: 2048, Behavior: WorkBehavior{Workload: workload.Zipper},
		}); err != nil {
			t.Fatal(err)
		}
		var log []string
		env.Go("client", func(p *sim.Proc) error {
			for i := 0; i < 30; i++ {
				r := c.Invoke(p, Request{Account: "a", AZ: "test-az-1a", Function: "fn"})
				log = append(log, r.FI+"/"+r.CPU.String())
			}
			return nil
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
