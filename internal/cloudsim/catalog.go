package cloudsim

import (
	"math"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
)

// This file encodes the default world: the 41 regions the paper profiled
// (29 on AWS Lambda, 8 on IBM Code Engine, 4 on DigitalOcean Functions)
// with day-0 CPU mixes, pool sizes, and temporal personalities calibrated
// to the facts reported in §4 (see DESIGN.md §4 for the list).

// mix builds an AWS x86 CPU mix from the four Lambda processor shares.
func mix(x25, x29, x30, epyc float64) map[cpu.Kind]float64 {
	m := make(map[cpu.Kind]float64, 4)
	if x25 > 0 {
		m[cpu.Xeon25] = x25
	}
	if x29 > 0 {
		m[cpu.Xeon29] = x29
	}
	if x30 > 0 {
		m[cpu.Xeon30] = x30
	}
	if epyc > 0 {
		m[cpu.EPYC] = epyc
	}
	return m
}

// peakHourUTC maps a local 14:00 demand peak to UTC by longitude.
func peakHourUTC(lon float64) int {
	h := math.Mod(14-lon/15, 24)
	if h < 0 {
		h += 24
	}
	return int(h)
}

// Temporal personality presets (DailyDrift, MixWalk).
const (
	stableDrift, stableWalk     = 0.02, 0.02
	moderateDrift, moderateWalk = 0.08, 0.06
	volatileDrift, volatileWalk = 0.80, 0.50
)

// awsAZ returns an AWS zone spec with the standard personality applied.
func awsAZ(name string, pool int, m map[cpu.Kind]float64, drift, walk float64, lon float64) AZSpec {
	return AZSpec{
		Name:          name,
		PoolFIs:       pool,
		ArmPoolFIs:    2048,
		Mix:           m,
		ReserveFrac:   0.06,
		DailyDrift:    drift,
		MixWalk:       walk,
		CapJitter:     0.10,
		ContentionAmp: 0.06,
		PeakHourUTC:   peakHourUTC(lon),
	}
}

// stable marks a temporally quiet zone: little capacity churn and a flat
// diurnal load curve (sa-east-1a, eu-north-1a, us-east-2a in the paper).
func stable(s AZSpec) AZSpec {
	s.CapJitter = 0.04
	s.ContentionAmp = 0.04
	return s
}

// hot marks a heavily shared zone: pronounced diurnal contention on top of
// its volatile hardware churn (the us-west-1 zones, ca-central-1a).
func hot(s AZSpec) AZSpec {
	s.ContentionAmp = 0.08
	return s
}

func smallAZ(name string, provider Provider, pool int, m map[cpu.Kind]float64, lon float64) AZSpec {
	_ = provider
	return AZSpec{
		Name:          name,
		PoolFIs:       pool,
		HostFIs:       64,
		Mix:           m,
		ReserveFrac:   0.05,
		DailyDrift:    0.05,
		MixWalk:       0.03,
		CapJitter:     0.08,
		ContentionAmp: 0.05,
		PeakHourUTC:   peakHourUTC(lon),
	}
}

// DefaultCatalog returns the full 41-region default world.
func DefaultCatalog() []RegionSpec {
	aws := func(name string, lat, lon float64, azs ...AZSpec) RegionSpec {
		return RegionSpec{Provider: AWS, Name: name, Loc: geo.Coord{Lat: lat, Lon: lon}, AZs: azs}
	}
	ibm := func(name string, lat, lon float64, m map[cpu.Kind]float64) RegionSpec {
		return RegionSpec{Provider: IBM, Name: name, Loc: geo.Coord{Lat: lat, Lon: lon},
			AZs: []AZSpec{smallAZ(name+"-a", IBM, 3072, m, lon)}}
	}
	do := func(name string, lat, lon float64, m map[cpu.Kind]float64) RegionSpec {
		return RegionSpec{Provider: DO, Name: name, Loc: geo.Coord{Lat: lat, Lon: lon},
			AZs: []AZSpec{smallAZ(name+"-a", DO, 1536, m, lon)}}
	}

	ibmMix := func(c24, c25 float64) map[cpu.Kind]float64 {
		return map[cpu.Kind]float64{cpu.IBMCascade24: c24, cpu.IBMCascade25: c25}
	}
	doMix := func(x26, x27 float64) map[cpu.Kind]float64 {
		return map[cpu.Kind]float64{cpu.DOXeon26: x26, cpu.DOXeon27: x27}
	}

	catalog := []RegionSpec{
		// ----- AWS Lambda: 29 regions -----
		aws("us-east-1", 38.9, -77.4,
			awsAZ("us-east-1a", 40000, mix(0.55, 0.15, 0.27, 0.03), moderateDrift, moderateWalk, -77.4),
			awsAZ("us-east-1b", 38000, mix(0.50, 0.18, 0.30, 0.02), moderateDrift, moderateWalk, -77.4),
			awsAZ("us-east-1c", 36000, mix(0.58, 0.12, 0.28, 0.02), moderateDrift, moderateWalk, -77.4)),
		aws("us-east-2", 40.0, -83.0,
			// us-east-2a runs exclusively on the 2.5 GHz Xeon — the
			// zero-error zone of EX-3.
			stable(awsAZ("us-east-2a", 18000, mix(1, 0, 0, 0), stableDrift, 0, -83.0)),
			// us-east-2b has coarse placement granularity (big hosts) and a
			// diverse mix: the worst single-poll error (~25%) in EX-3.
			func() AZSpec {
				s := awsAZ("us-east-2b", 20000, mix(0.45, 0.20, 0.25, 0.10), moderateDrift, moderateWalk, -83.0)
				s.HostFIs = 1200
				return s
			}(),
			awsAZ("us-east-2c", 16000, mix(0.75, 0, 0.20, 0.05), moderateDrift, moderateWalk, -83.0)),
		aws("us-west-1", 37.4, -122.0,
			hot(awsAZ("us-west-1a", 24000, mix(0.50, 0.15, 0.30, 0.05), volatileDrift, volatileWalk, -122.0)),
			func() AZSpec {
				s := hot(awsAZ("us-west-1b", 22000, mix(0.36, 0.19, 0.32, 0.13), volatileDrift, volatileWalk, -122.0))
				s.HourlyDrift = 0.01
				return s
			}()),
		aws("us-west-2", 45.9, -119.3,
			// 3.0 GHz most prevalent here (§4.2).
			awsAZ("us-west-2a", 30000, mix(0.35, 0.18, 0.45, 0.02), moderateDrift, moderateWalk, -119.3),
			awsAZ("us-west-2b", 28000, mix(0.38, 0.15, 0.44, 0.03), moderateDrift, moderateWalk, -119.3)),
		aws("ca-central-1", 45.5, -73.6,
			hot(awsAZ("ca-central-1a", 14000, mix(0.50, 0.30, 0.20, 0), volatileDrift, volatileWalk, -73.6))),
		aws("ca-west-1", 51.0, -114.1,
			awsAZ("ca-west-1a", 8000, mix(0.70, 0.10, 0.20, 0), moderateDrift, moderateWalk, -114.1)),
		aws("sa-east-1", -23.5, -46.6,
			stable(awsAZ("sa-east-1a", 16000, mix(0.55, 0.08, 0.37, 0), stableDrift, stableWalk, -46.6))),
		aws("eu-west-1", 53.3, -6.3,
			awsAZ("eu-west-1a", 28000, mix(0.52, 0.16, 0.30, 0.02), moderateDrift, moderateWalk, -6.3),
			awsAZ("eu-west-1b", 26000, mix(0.56, 0.14, 0.28, 0.02), moderateDrift, moderateWalk, -6.3)),
		aws("eu-west-2", 51.5, -0.1,
			awsAZ("eu-west-2a", 20000, mix(0.60, 0.12, 0.26, 0.02), moderateDrift, moderateWalk, -0.1)),
		aws("eu-west-3", 48.9, 2.4,
			awsAZ("eu-west-3a", 14000, mix(0.62, 0.14, 0.24, 0), moderateDrift, moderateWalk, 2.4)),
		aws("eu-central-1", 50.1, 8.7,
			// The long-runway zone of EX-3: ~10x eu-north-1a's capacity.
			awsAZ("eu-central-1a", 48000, mix(0.55, 0.15, 0.30, 0), moderateDrift, moderateWalk, 8.7)),
		aws("eu-central-2", 47.4, 8.5,
			awsAZ("eu-central-2a", 9000, mix(0.66, 0.10, 0.24, 0), moderateDrift, moderateWalk, 8.5)),
		aws("eu-north-1", 59.3, 18.1,
			// Small pool: fails after ~5k calls in EX-3; temporally stable.
			func() AZSpec {
				s := stable(awsAZ("eu-north-1a", 5000, mix(0.70, 0, 0.30, 0), stableDrift, stableWalk, 18.1))
				s.HostFIs = 64 // small pool, fine-grained hosts
				return s
			}()),
		aws("eu-south-1", 45.5, 9.2,
			awsAZ("eu-south-1a", 8000, mix(0.64, 0.12, 0.24, 0), moderateDrift, moderateWalk, 9.2)),
		aws("eu-south-2", 41.6, -0.9,
			awsAZ("eu-south-2a", 7000, mix(0.68, 0.08, 0.24, 0), moderateDrift, moderateWalk, -0.9)),
		aws("af-south-1", -33.9, 18.4,
			// The only region without the 3.0 GHz Xeon (§4.2).
			awsAZ("af-south-1a", 6000, mix(0.80, 0.20, 0, 0), moderateDrift, moderateWalk, 18.4)),
		aws("ap-east-1", 22.3, 114.2,
			awsAZ("ap-east-1a", 9000, mix(0.60, 0.16, 0.24, 0), moderateDrift, moderateWalk, 114.2)),
		aws("ap-south-1", 19.1, 72.9,
			awsAZ("ap-south-1a", 26000, mix(0.58, 0.14, 0.26, 0.02), moderateDrift, moderateWalk, 72.9)),
		aws("ap-south-2", 17.4, 78.5,
			awsAZ("ap-south-2a", 8000, mix(0.70, 0.06, 0.24, 0), moderateDrift, moderateWalk, 78.5)),
		aws("ap-northeast-1", 35.7, 139.7,
			awsAZ("ap-northeast-1a", 30000, mix(0.60, 0.15, 0.20, 0.05), moderateDrift, moderateWalk, 139.7),
			awsAZ("ap-northeast-1b", 26000, mix(0.62, 0.13, 0.22, 0.03), moderateDrift, moderateWalk, 139.7)),
		aws("ap-northeast-2", 37.6, 127.0,
			awsAZ("ap-northeast-2a", 18000, mix(0.58, 0.16, 0.26, 0), moderateDrift, moderateWalk, 127.0)),
		aws("ap-northeast-3", 34.7, 135.5,
			awsAZ("ap-northeast-3a", 9000, mix(0.68, 0.08, 0.24, 0), moderateDrift, moderateWalk, 135.5)),
		aws("ap-southeast-1", 1.3, 103.8,
			awsAZ("ap-southeast-1a", 24000, mix(0.56, 0.16, 0.26, 0.02), moderateDrift, moderateWalk, 103.8)),
		aws("ap-southeast-2", -33.9, 151.2,
			// Reserve pool with hardware unseen in the day-0 mix: the
			// anomalous-spike zone of EX-3.
			func() AZSpec {
				s := awsAZ("ap-southeast-2a", 20000, mix(0.60, 0.15, 0.25, 0), moderateDrift, moderateWalk, 151.2)
				s.ReserveMix = mix(0.20, 0.10, 0.20, 0.50)
				s.ReserveFrac = 0.12
				return s
			}()),
		aws("ap-southeast-3", -6.2, 106.8,
			awsAZ("ap-southeast-3a", 10000, mix(0.66, 0.10, 0.24, 0), moderateDrift, moderateWalk, 106.8)),
		aws("ap-southeast-4", -37.8, 145.0,
			awsAZ("ap-southeast-4a", 7000, mix(0.72, 0.06, 0.22, 0), moderateDrift, moderateWalk, 145.0)),
		aws("me-south-1", 26.1, 50.6,
			awsAZ("me-south-1a", 7000, mix(0.66, 0.10, 0.24, 0), moderateDrift, moderateWalk, 50.6)),
		aws("me-central-1", 24.5, 54.4,
			awsAZ("me-central-1a", 8000, mix(0.64, 0.10, 0.26, 0), moderateDrift, moderateWalk, 54.4)),
		aws("il-central-1", 32.1, 34.8,
			// The AMD EPYC stronghold (§4.2).
			awsAZ("il-central-1a", 9000, mix(0.50, 0.10, 0.25, 0.15), moderateDrift, moderateWalk, 34.8)),

		// ----- IBM Code Engine: 8 regions -----
		ibm("us-south", 32.8, -96.8, ibmMix(0.55, 0.45)),
		ibm("us-east", 38.9, -77.0, ibmMix(0.50, 0.50)),
		ibm("eu-de", 50.1, 8.7, ibmMix(0.40, 0.60)),
		ibm("eu-gb", 51.5, -0.1, ibmMix(0.52, 0.48)),
		ibm("eu-es", 40.4, -3.7, ibmMix(0.60, 0.40)),
		ibm("jp-tok", 35.7, 139.7, ibmMix(0.45, 0.55)),
		ibm("jp-osa", 34.7, 135.5, ibmMix(0.58, 0.42)),
		ibm("au-syd", -33.9, 151.2, ibmMix(0.50, 0.50)),

		// ----- DigitalOcean Functions: 4 regions -----
		do("nyc1", 40.7, -74.0, doMix(0.55, 0.45)),
		do("sfo3", 37.8, -122.4, doMix(0.50, 0.50)),
		do("ams3", 52.4, 4.9, doMix(0.60, 0.40)),
		do("blr1", 13.0, 77.6, doMix(0.48, 0.52)),
	}
	return catalog
}
