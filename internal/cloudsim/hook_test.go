package cloudsim

import (
	"errors"
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// TestOnResponseHook verifies the platform tap sees every delivered
// response — successes, throttles, and probe declines alike.
func TestOnResponseHook(t *testing.T) {
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{plainAZ(256)},
	}}
	var seen []Response
	var fns []string
	cloud := New(env, 3, catalog, Options{
		HorizonDays: 1,
		Quota:       50,
		OnResponse: func(req Request, resp Response) {
			seen = append(seen, resp)
			fns = append(fns, req.Function)
		},
	})
	if _, err := cloud.Deploy("test-az-1a", "dyn", DeployConfig{
		MemoryMB: 1024, Dynamic: true, Behavior: SleepBehavior{D: time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	// 60 plain requests against a quota of 50 -> 10 throttles; then one
	// probe decline.
	for i := 0; i < 60; i++ {
		cloud.StartInvoke(Request{Account: "a", AZ: "test-az-1a", Function: "dyn"}, func(Response) {})
	}
	env.Schedule(2*time.Second, func() {
		cloud.StartInvoke(Request{
			Account: "a", AZ: "test-az-1a", Function: "dyn",
			Work: ProbeBehavior{
				Work:   WorkBehavior{Workload: workload.Sha1Hash},
				Banned: cpu.MaskOf(cpu.Xeon25, cpu.Xeon29, cpu.Xeon30, cpu.EPYC),
			},
		}, func(Response) {})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 61 {
		t.Fatalf("hook saw %d responses, want 61", len(seen))
	}
	okCount, throttled, declined := 0, 0, 0
	for _, r := range seen {
		switch {
		case errors.Is(r.Err, ErrThrottled):
			throttled++
		case r.OK():
			if out, isProbe := r.Value.(ProbeOutcome); isProbe && !out.Ran {
				declined++
			} else {
				okCount++
			}
		}
	}
	if okCount != 50 || throttled != 10 || declined != 1 {
		t.Fatalf("ok/throttled/declined = %d/%d/%d", okCount, throttled, declined)
	}
	for _, fn := range fns {
		if fn != "dyn" {
			t.Fatalf("hook saw request for %q", fn)
		}
	}
}
