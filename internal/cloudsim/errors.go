package cloudsim

import "errors"

var (
	// ErrThrottled is returned when an account exceeds its per-region
	// concurrent execution quota (HTTP 429 TooManyRequestsException).
	ErrThrottled = errors.New("cloudsim: concurrency quota exceeded")

	// ErrSaturated is returned when the availability zone has no host
	// capacity left to place a new function instance — the condition the
	// paper's sampling method drives every zone into (§4.1). Real platforms
	// also surface this as a 429; the simulator distinguishes the causes so
	// tests can assert on the mechanism, while samplers treat both as
	// generic failures just like a real client would.
	ErrSaturated = errors.New("cloudsim: no capacity to place function instance")

	// ErrZoneOutage is returned while an injected availability-zone outage
	// is active: the zone rejects every request, like a regional brown-out
	// or control-plane incident. See internal/chaos.
	ErrZoneOutage = errors.New("cloudsim: availability zone outage")

	// ErrNoSuchDeployment is returned for invocations of unknown endpoints.
	ErrNoSuchDeployment = errors.New("cloudsim: no such deployment")

	// ErrNoSuchAZ is returned for operations addressed to an availability
	// zone absent from the catalog.
	ErrNoSuchAZ = errors.New("cloudsim: no such availability zone")

	// ErrDeploymentExists is returned when deploying a function name already
	// taken in the target zone.
	ErrDeploymentExists = errors.New("cloudsim: deployment already exists")

	// ErrBadRequest is returned for malformed invocations (e.g. dynamic
	// work sent to a non-dynamic deployment).
	ErrBadRequest = errors.New("cloudsim: bad request")
)
