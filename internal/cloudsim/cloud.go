// Package cloudsim is the simulated sky: a deterministic discrete-event
// model of multiple FaaS providers, their regions and availability zones,
// the finite heterogeneous host pools behind them, and the function-
// instance lifecycle the paper's sampling technique exploits.
//
// See DESIGN.md §2 for the substitution argument: the phenomena the paper
// measures on live clouds (CPU heterogeneity, keep-alive, saturation,
// temporal drift, GB-second billing) are reproduced here as explicit
// mechanisms, so the sampling/characterization/routing stack above runs
// unmodified against either.
package cloudsim

import (
	"fmt"
	"math"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/metrics"
	"skyfaas/internal/rng"
	"skyfaas/internal/saaf"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// Provider is a FaaS platform operator.
type Provider int

// The providers the paper's sky mesh spans.
const (
	AWS Provider = iota + 1
	IBM
	DO
)

// String returns the provider's display name.
func (p Provider) String() string {
	switch p {
	case AWS:
		return "aws-lambda"
	case IBM:
		return "ibm-code-engine"
	case DO:
		return "do-functions"
	default:
		return fmt.Sprintf("Provider(%d)", int(p))
	}
}

// RegionSpec statically describes a region: who operates it, where it is,
// and the zones it contains.
type RegionSpec struct {
	Provider Provider
	Name     string
	Loc      geo.Coord
	AZs      []AZSpec
}

// AZSpec statically describes one availability zone's provisioned pool and
// its temporal personality.
type AZSpec struct {
	Name string
	// PoolFIs is the day-0 x86 capacity in function-instance slots.
	PoolFIs int
	// ArmPoolFIs is the Graviton capacity (0 for providers without arm64).
	ArmPoolFIs int
	// HostFIs is the FI capacity per host (0 = default 128). Larger hosts
	// make single polls see fewer machines and so raise single-poll error.
	HostFIs int
	// Mix is the day-0 CPU distribution over x86 hosts.
	Mix map[cpu.Kind]float64
	// ReserveMix, with ReserveFrac, models the slow scale-up reaction to
	// saturation; a reserve mix different from Mix produces EX-3's
	// "previously unseen hardware" anomaly.
	ReserveMix  map[cpu.Kind]float64
	ReserveFrac float64
	// DailyDrift is the fraction of idle hosts re-drawn each day.
	DailyDrift float64
	// MixWalk is the random-walk step of the daily target-mix drift.
	MixWalk float64
	// HourlyDrift enables intra-day churn (us-west-1b's Fig.-8 behaviour).
	HourlyDrift float64
	// CapJitter is the daily capacity jitter fraction.
	CapJitter float64
	// ContentionAmp and PeakHourUTC shape the diurnal load factor.
	ContentionAmp float64
	PeakHourUTC   int
}

// Region is the live counterpart of a RegionSpec.
type Region struct {
	spec RegionSpec
	azs  []*AZ
	// env is the event shard this region's zones run on. In a single-queue
	// cloud it is the cloud's env; under a sharded engine each region is
	// pinned to one shard so all of its state stays single-threaded.
	env *sim.Env
	// inflight tracks per-account concurrent executions for quota purposes.
	// Owned by the region's shard; never touched from another shard.
	inflight map[string]int
}

// Spec returns the region's static description.
func (r *Region) Spec() RegionSpec { return r.spec }

// Name returns the region name.
func (r *Region) Name() string { return r.spec.Name }

// Provider returns the operating provider.
func (r *Region) Provider() Provider { return r.spec.Provider }

// Loc returns the region's coordinates.
func (r *Region) Loc() geo.Coord { return r.spec.Loc }

// AZs returns the region's zones in catalog order.
func (r *Region) AZs() []*AZ {
	out := make([]*AZ, len(r.azs))
	copy(out, r.azs)
	return out
}

// Options tune platform mechanics. The zero value is completed by defaults.
type Options struct {
	// KeepAlive is how long an idle instance persists (5 min on Lambda).
	KeepAlive time.Duration
	// Quota is the per-account, per-region concurrent execution limit.
	Quota int
	// ColdStartMS / ColdStartSigma parameterize the lognormal cold-start
	// initialization delay (unbilled, like managed-runtime init).
	ColdStartMS    float64
	ColdStartSigma float64
	// OverheadMS is the fixed per-invocation platform overhead (billed).
	OverheadMS float64
	// IntraCloudRTT is the round trip for requests without a client
	// location (function-to-function within a zone).
	IntraCloudRTT time.Duration
	// ScaleUpDelay is how long the platform takes to bring reserve hosts
	// online after saturation.
	ScaleUpDelay time.Duration
	// HorizonDays bounds the pre-scheduled drift timeline.
	HorizonDays int
	// Latency is the client-to-region RTT model.
	Latency geo.LatencyModel
	// OnResponse, when set, observes every response as it is delivered to
	// its caller — the platform-side tap for logging and tracing. It runs
	// inside the simulation and must not block.
	OnResponse func(Request, Response)
	// Metrics, when set, receives per-zone instrumentation (invocations,
	// cold starts, failures, saturation events, live instances, billed
	// latency). Nil disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

// WithDefaults returns o with every zero field replaced by its paper
// default; exported so engine builders can derive synchronization bounds
// (the sharded lookahead) from the effective options.
func (o Options) WithDefaults() Options {
	if o.KeepAlive == 0 {
		o.KeepAlive = 5 * time.Minute
	}
	if o.Quota == 0 {
		o.Quota = 1000
	}
	if o.ColdStartMS == 0 {
		o.ColdStartMS = 140
	}
	if o.ColdStartSigma == 0 {
		o.ColdStartSigma = 0.25
	}
	if o.OverheadMS == 0 {
		o.OverheadMS = 1.5
	}
	if o.IntraCloudRTT == 0 {
		o.IntraCloudRTT = 2 * time.Millisecond
	}
	if o.ScaleUpDelay == 0 {
		o.ScaleUpDelay = 25 * time.Second
	}
	if o.HorizonDays == 0 {
		o.HorizonDays = 30
	}
	if o.Latency == (geo.LatencyModel{}) {
		o.Latency = geo.DefaultLatencyModel()
	}
	return o
}

// Cloud is the simulated multi-provider sky.
type Cloud struct {
	env      *sim.Env
	root     *rng.Stream
	opts     Options
	regions  []*Region
	regionBy map[string]*Region
	azBy     map[string]*AZ
	prices   map[Provider]PriceModel
	meter    *Meter
	// latRands holds one client-latency jitter stream per shard, indexed by
	// the calling env's shard, so concurrent shards never interleave draws
	// on a shared stream. A single-queue cloud has exactly one.
	latRands []*rng.Stream
}

// New builds a cloud over env from the given catalog. A nil or empty
// catalog means the full 41-region default world.
//
// When env belongs to a sim.Sharded group with more than one shard, the
// cloud distributes regions round-robin over shards 1..N-1, keeping shard 0
// (by convention env itself) free for client-side model code; every zone's
// events then run on its region's shard, synchronized conservatively by the
// network latency between client and region (the group lookahead must not
// exceed IntraCloudRTT/2). With a plain env or a one-shard group everything
// runs on env, byte-identical to the historical single-queue behaviour.
func New(env *sim.Env, seed uint64, catalog []RegionSpec, opts Options) *Cloud {
	if len(catalog) == 0 {
		catalog = DefaultCatalog()
	}
	c := &Cloud{
		env:      env,
		root:     rng.New(seed).Split("cloud"),
		opts:     opts.WithDefaults(),
		regionBy: make(map[string]*Region, len(catalog)),
		azBy:     make(map[string]*AZ),
		prices:   defaultPrices(),
		meter:    NewMeter(),
	}
	nShards := 1
	if g := env.Group(); g != nil {
		nShards = g.NumShards()
	}
	c.latRands = make([]*rng.Stream, nShards)
	c.latRands[0] = c.root.Split("latency")
	for i := 1; i < nShards; i++ {
		c.latRands[i] = c.root.Split(fmt.Sprintf("latency/%d", i))
	}
	for i, rs := range catalog {
		region := &Region{
			spec:     rs,
			env:      shardEnvFor(env, i),
			inflight: make(map[string]int),
		}
		for _, azSpec := range rs.AZs {
			az := newAZ(c, region, azSpec)
			region.azs = append(region.azs, az)
			c.azBy[azSpec.Name] = az
		}
		c.regions = append(c.regions, region)
		c.regionBy[rs.Name] = region
	}
	c.scheduleDrift()
	return c
}

// shardEnvFor maps the i'th catalog region onto a shard: round-robin over
// shards 1..N-1, reserving shard 0 for clients. Single-queue setups (plain
// env or one-shard group) map everything onto env.
func shardEnvFor(env *sim.Env, i int) *sim.Env {
	g := env.Group()
	if g == nil || g.NumShards() < 2 {
		return env
	}
	return g.Shard(1 + i%(g.NumShards()-1))
}

// scheduleDrift lays out the bounded drift timeline so Env.Run terminates.
// Each zone's timeline lives on its own shard.
func (c *Cloud) scheduleDrift() {
	for _, region := range c.regions {
		for _, az := range region.azs {
			az := az
			for day := 1; day <= c.opts.HorizonDays; day++ {
				az.env.Schedule(time.Duration(day)*24*time.Hour, az.driftDaily)
			}
			if az.spec.HourlyDrift > 0 {
				hours := c.opts.HorizonDays * 24
				for h := 1; h <= hours; h++ {
					az.env.Schedule(time.Duration(h)*time.Hour, az.driftHourly)
				}
			}
		}
	}
}

// Env returns the control environment the cloud was built on (shard 0 of a
// sharded group; the only environment of a single-queue cloud).
func (c *Cloud) Env() *sim.Env { return c.env }

// Meter returns the cloud-wide billing meter (charged per account).
func (c *Cloud) Meter() *Meter { return c.meter }

// Options returns the effective platform options.
func (c *Cloud) Options() Options { return c.opts }

// Price returns the rate card of a provider.
func (c *Cloud) Price(p Provider) PriceModel { return c.prices[p] }

// Regions returns all regions in catalog order.
func (c *Cloud) Regions() []*Region {
	out := make([]*Region, len(c.regions))
	copy(out, c.regions)
	return out
}

// Region returns a region by name.
func (c *Cloud) Region(name string) (*Region, bool) {
	r, ok := c.regionBy[name]
	return r, ok
}

// AZ returns a zone by name.
func (c *Cloud) AZ(name string) (*AZ, bool) {
	az, ok := c.azBy[name]
	return az, ok
}

// DeployConfig configures a function deployment.
type DeployConfig struct {
	MemoryMB int
	Arch     cpu.Arch
	Behavior Behavior
	// Dynamic marks the deployment as a dynamic function: invocations may
	// carry a Work override in the request (§3.2).
	Dynamic  bool
	CodeHash string
}

// Deploy creates a function deployment in the named zone.
func (c *Cloud) Deploy(azName, fnName string, cfg DeployConfig) (*Deployment, error) {
	az, ok := c.azBy[azName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchAZ, azName)
	}
	return az.deploy(fnName, cfg)
}

// Request is one function invocation.
type Request struct {
	// Account owns the invocation for quota and billing purposes.
	Account string
	// AZ and Function address the deployment.
	AZ       string
	Function string
	// Work optionally overrides the deployment behavior; allowed only for
	// dynamic deployments.
	Work Behavior
	// PayloadHash keys the dynamic-function per-instance cache.
	PayloadHash string
	// ClientLoc, when set, applies geographic network latency; nil means
	// an intra-cloud call.
	ClientLoc *geo.Coord
}

// Response is the outcome of an invocation.
type Response struct {
	// Err is nil on success; ErrThrottled / ErrSaturated / ... otherwise.
	Err error
	// FI / Host / CPU identify where the request ran.
	FI   string
	Host string
	CPU  cpu.Kind
	// Cold reports a cold start.
	Cold bool
	// PayloadCached reports the dynamic-function cache already held the
	// request's payload hash.
	PayloadCached bool
	// Sent / Started / Ended are virtual timestamps (request issue, handler
	// start, handler end).
	Sent    time.Time
	Started time.Time
	Ended   time.Time
	// BilledMS is the billed duration; CostUSD the resulting charge.
	BilledMS float64
	CostUSD  float64
	// Profile is the SAAF report attached to successful responses.
	Profile saaf.Report
	// Value carries a handler's return value (nil for fast-path behaviors).
	Value any
}

// OK reports success.
func (r Response) OK() bool { return r.Err == nil }

// call pairs a request with its completion callback while in flight.
type call struct {
	req  Request
	done func(Response)
	// env is the caller's environment: the response is delivered (and
	// OnResponse observed) there.
	env *sim.Env
	// oneWay is the base network one-way latency drawn at send time; any
	// fault-injected extra RTT is applied on the zone's own shard.
	oneWay time.Duration
}

// Invoke performs a blocking invocation from a client or handler process.
func (c *Cloud) Invoke(p *sim.Proc, req Request) Response {
	ev := sim.NewEvent(p.Env())
	c.StartInvokeFrom(p.Env(), req, func(r Response) { ev.Trigger(r) })
	v := p.Wait(ev)
	r, ok := v.(Response)
	if !ok {
		return Response{Err: ErrBadRequest}
	}
	return r
}

// StartInvoke performs an asynchronous invocation from the cloud's control
// environment; done runs when the response arrives back at the caller
// (network latency included both ways).
func (c *Cloud) StartInvoke(req Request, done func(Response)) {
	c.StartInvokeFrom(c.env, req, done)
}

// StartInvokeFrom is StartInvoke for a caller living on a specific shard:
// the request crosses from the caller's env to the zone's shard under the
// network latency, and the response is delivered back on from.
func (c *Cloud) StartInvokeFrom(from *sim.Env, req Request, done func(Response)) {
	sent := from.Now()
	az, ok := c.azBy[req.AZ]
	if !ok {
		// No such zone: bounce at the provider edge after an intra-cloud
		// round trip, entirely on the caller's shard.
		oneWay := c.opts.IntraCloudRTT / 2
		from.Schedule(oneWay, func() {
			resp := Response{Err: fmt.Errorf("%w: AZ %q", ErrNoSuchDeployment, req.AZ), Sent: sent}
			if c.opts.OnResponse != nil {
				c.opts.OnResponse(req, resp)
			}
			from.Schedule(oneWay, func() { done(resp) })
		})
		return
	}
	oneWay := c.baseOneWay(from, req, az)
	cl := call{req: req, done: done, env: from, oneWay: oneWay}
	from.SendTo(az.env, oneWay, func() { c.arrive(cl, sent, az) })
}

// baseOneWay is the fault-free one-way network latency from the caller to
// the zone. Jitter draws come from the caller shard's own stream.
func (c *Cloud) baseOneWay(from *sim.Env, req Request, az *AZ) time.Duration {
	if req.ClientLoc == nil {
		return c.opts.IntraCloudRTT / 2
	}
	latRand := c.latRands[from.Shard()]
	return c.opts.Latency.RTT(*req.ClientLoc, az.region.spec.Loc, latRand) / 2
}

// respond ships resp back to the caller's shard. The zone's current
// fault-injected extra RTT is added to the return leg; OnResponse observes
// the response at delivery, on the caller's shard, so observation order is
// the caller's deterministic event order.
func (c *Cloud) respond(cl call, az *AZ, resp Response) {
	back := cl.oneWay + az.fault.extraRTT/2
	az.env.SendTo(cl.env, back, func() {
		if c.opts.OnResponse != nil {
			c.opts.OnResponse(cl.req, resp)
		}
		cl.done(resp)
	})
}

// arrive runs on the zone's shard when the request reaches the region edge.
// Fault-injected extra RTT delays processing here — on the zone's side —
// so the fault state is only ever read by its owning shard.
func (c *Cloud) arrive(cl call, sent time.Time, az *AZ) {
	if extra := az.fault.extraRTT / 2; extra > 0 {
		az.env.Schedule(extra, func() { c.process(cl, sent, az) })
		return
	}
	c.process(cl, sent, az)
}

func (c *Cloud) process(cl call, sent time.Time, az *AZ) {
	req := cl.req
	az.m.invocations.Inc()
	if err := az.rejectChaos(); err != nil {
		c.respond(cl, az, Response{Err: err, Sent: sent})
		return
	}
	dep, ok := az.deployments[req.Function]
	if !ok {
		az.m.failBadReq.Inc()
		c.respond(cl, az, Response{Err: fmt.Errorf("%w: %s/%s", ErrNoSuchDeployment, req.AZ, req.Function), Sent: sent})
		return
	}
	behavior := dep.behavior
	if req.Work != nil {
		if !dep.dynamic {
			az.m.failBadReq.Inc()
			c.respond(cl, az, Response{Err: fmt.Errorf("%w: work override on non-dynamic deployment", ErrBadRequest), Sent: sent})
			return
		}
		behavior = req.Work
	}
	if behavior == nil {
		az.m.failBadReq.Inc()
		c.respond(cl, az, Response{Err: fmt.Errorf("%w: deployment has no behavior", ErrBadRequest), Sent: sent})
		return
	}

	if az.region.inflight[req.Account] >= c.opts.Quota {
		az.m.failThrottled.Inc()
		c.respond(cl, az, Response{Err: ErrThrottled, Sent: sent})
		return
	}
	fi, cold, err := az.acquireFI(dep)
	if err != nil {
		az.m.failSaturated.Inc()
		c.respond(cl, az, Response{Err: err, Sent: sent})
		return
	}
	if cold {
		az.m.coldStarts.Inc()
	}
	az.region.inflight[req.Account]++

	initDelay := time.Duration(c.opts.OverheadMS * float64(time.Millisecond) / 2)
	if cold {
		ms := az.rand.LogNorm(0, c.opts.ColdStartSigma) * c.opts.ColdStartMS * az.fault.coldStartFactor()
		// Init runs on the CPU share the memory setting grants, so
		// low-memory deployments cold-start slower (this is why Fig. 3's
		// smaller memory settings need longer sleeps for full coverage).
		ms *= initMemoryFactor(dep.memoryMB)
		az.m.coldStartMS.Observe(ms)
		initDelay += time.Duration(ms * float64(time.Millisecond))
	}

	cached := false
	if req.PayloadHash != "" {
		cached = fi.cache != nil && hasHash(fi.cache, req.PayloadHash)
		if !cached {
			if fi.cache == nil {
				fi.cache = make(map[string]struct{})
			}
			fi.cache[req.PayloadHash] = struct{}{}
		}
	}

	finish := func(started time.Time, value any, handlerErr error) {
		ended := az.env.Now()
		billedMS := float64(ended.Sub(started)) / float64(time.Millisecond)
		billedMS += c.opts.OverheadMS
		price := c.prices[az.region.spec.Provider]
		cost := price.Cost(dep.memoryMB, billedMS)
		c.meter.ChargeIn(req.Account, az.region.spec.Name, cost)
		az.region.inflight[req.Account]--
		az.releaseFI(fi)

		profile, perr := saaf.Collect(cpu.CPUInfo(fi.host.kind, dep.vcpus()), fi.id, fi.host.id, cold, billedMS)
		respErr := handlerErr
		if respErr == nil && perr != nil {
			respErr = perr
		}
		if respErr != nil {
			az.m.failHandler.Inc()
		} else {
			az.m.billedMS.Observe(billedMS)
		}
		c.respond(cl, az, Response{
			Err:           respErr,
			FI:            fi.id,
			Host:          fi.host.id,
			CPU:           profile.Kind,
			Cold:          cold,
			PayloadCached: cached,
			Sent:          sent,
			Started:       started,
			Ended:         ended,
			BilledMS:      billedMS,
			CostUSD:       cost,
			Profile:       profile,
			Value:         value,
		})
	}

	az.env.Schedule(initDelay, func() {
		started := az.env.Now()
		switch b := behavior.(type) {
		case SleepBehavior:
			az.env.Schedule(b.D, func() { finish(started, nil, nil) })
		case WorkBehavior:
			dur := c.modelRuntime(az, dep, fi.host, b)
			az.env.Schedule(dur, func() { finish(started, nil, nil) })
		case ProbeBehavior:
			if c.runProbe(cl, sent, az, dep, fi, cold, cached, started, b) {
				return // declined: probe path owns response and release
			}
			dur := c.modelRuntime(az, dep, fi.host, b.Work)
			extra := time.Duration(probeDecisionMS * float64(time.Millisecond))
			az.env.Schedule(dur+extra, func() {
				finish(started, ProbeOutcome{Ran: true, RuntimeMS: float64(dur) / float64(time.Millisecond)}, nil)
			})
		case HandlerBehavior:
			ctx := &Ctx{cloud: c, az: az, dep: dep, fi: fi, cold: cold}
			az.env.Go("handler/"+dep.name, func(p *sim.Proc) error {
				ctx.proc = p
				value, herr := b.Fn(ctx, req)
				finish(started, value, herr)
				return nil
			})
		default:
			finish(started, nil, fmt.Errorf("%w: unknown behavior %T", ErrBadRequest, behavior))
		}
	})
}

func hasHash(set map[string]struct{}, h string) bool {
	_, ok := set[h]
	return ok
}

// initMemoryFactor scales cold-start time by the CPU share a memory setting
// grants: a 512 MB deployment initializes ~2x slower than a 2 GB one.
func initMemoryFactor(memoryMB int) float64 {
	if memoryMB <= 0 {
		return 1
	}
	f := math.Sqrt(2048 / float64(memoryMB))
	if f < 0.7 {
		return 0.7
	}
	if f > 2.5 {
		return 2.5
	}
	return f
}

// modelRuntime computes the simulated duration of workload w on host under
// the deployment's memory setting and the zone's current contention.
func (c *Cloud) modelRuntime(az *AZ, dep *Deployment, host *Host, w WorkBehavior) time.Duration {
	spec, ok := workload.Get(w.Workload)
	if !ok {
		return time.Millisecond
	}
	ms := spec.BaseMS * w.scale()
	ms *= spec.CPUFactor(host.kind)
	ms *= spec.MemoryFactor(dep.memoryMB)
	ms *= az.contention(az.env.Now())
	ms *= az.rand.LogNorm(0, spec.NoiseFrac)
	ms += w.ExtraMS
	if ms < 0.1 {
		ms = 0.1
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// Inflight reports an account's current concurrent executions in a region
// (exposed for tests).
func (c *Cloud) Inflight(account, region string) int {
	r, ok := c.regionBy[region]
	if !ok {
		return 0
	}
	return r.inflight[account]
}
