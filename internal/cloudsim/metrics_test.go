package cloudsim

import (
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/metrics"
	"skyfaas/internal/sim"
)

func metricsWorld(t *testing.T, reg *metrics.Registry, poolFIs int) (*sim.Env, *Cloud) {
	t.Helper()
	env := sim.NewEnv(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	catalog := []RegionSpec{{
		Provider: AWS, Name: "m1", Loc: geo.Coord{Lat: 40, Lon: -80},
		AZs: []AZSpec{{
			Name: "m1-a", PoolFIs: poolFIs, HostFIs: 4,
			Mix: map[cpu.Kind]float64{cpu.Xeon25: 1},
		}},
	}}
	cloud := New(env, 11, catalog, Options{Metrics: reg, HorizonDays: 1})
	return env, cloud
}

func counterValue(t *testing.T, reg *metrics.Registry, name string, labels ...metrics.Label) float64 {
	t.Helper()
	snap := reg.Snapshot()
	for _, fam := range snap.Metrics {
		if fam.Name != name {
			continue
		}
	series:
		for _, s := range fam.Series {
			for _, want := range labels {
				found := false
				for _, l := range s.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					continue series
				}
			}
			return s.Value
		}
	}
	return -1
}

func TestCloudCountsInvocationsAndColdStarts(t *testing.T) {
	reg := metrics.NewRegistry()
	env, cloud := metricsWorld(t, reg, 64)
	if _, err := cloud.Deploy("m1-a", "fn", DeployConfig{
		MemoryMB: 2048, Behavior: SleepBehavior{D: 50 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	env.Go("client", func(p *sim.Proc) error {
		// First call cold, second reuses the warm instance.
		for i := 0; i < 2; i++ {
			if resp := cloud.Invoke(p, Request{Account: "a", AZ: "m1-a", Function: "fn"}); !resp.OK() {
				t.Errorf("invoke %d: %v", i, resp.Err)
			}
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	az := metrics.L("az", "m1-a")
	if got := counterValue(t, reg, "sky_cloudsim_invocations_total", az); got != 2 {
		t.Fatalf("invocations = %v, want 2", got)
	}
	if got := counterValue(t, reg, "sky_cloudsim_cold_starts_total", az); got != 1 {
		t.Fatalf("cold starts = %v, want 1", got)
	}
	// Both completions landed in the billed-duration histogram.
	var hist *metrics.HistSnapshot
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name == "sky_cloudsim_billed_ms" {
			hist = fam.Series[0].Histogram
		}
	}
	if hist == nil || hist.Count != 2 {
		t.Fatalf("billed histogram = %+v", hist)
	}
}

func TestCloudCountsSaturation(t *testing.T) {
	reg := metrics.NewRegistry()
	env, cloud := metricsWorld(t, reg, 4) // one host, four slots
	if _, err := cloud.Deploy("m1-a", "fn", DeployConfig{
		MemoryMB: 2048, Behavior: SleepBehavior{D: time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	var failures int
	env.Go("client", func(p *sim.Proc) error {
		evs := make([]*sim.Event, 6)
		for i := range evs {
			ev := sim.NewEvent(env)
			evs[i] = ev
			cloud.StartInvoke(Request{Account: "a", AZ: "m1-a", Function: "fn"},
				func(r Response) { ev.Trigger(r) })
		}
		for _, ev := range evs {
			if resp, ok := p.Wait(ev).(Response); ok && !resp.OK() {
				failures++
			}
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if failures != 2 {
		t.Fatalf("failures = %d, want 2 (6 concurrent calls on 4 slots)", failures)
	}
	az := metrics.L("az", "m1-a")
	if got := counterValue(t, reg, "sky_cloudsim_saturation_events_total", az); got != 2 {
		t.Fatalf("saturation events = %v, want 2", got)
	}
	if got := counterValue(t, reg, "sky_cloudsim_failures_total", az, metrics.L("reason", "saturated")); got != 2 {
		t.Fatalf("saturated failures = %v, want 2", got)
	}
	// All instances idle now; after keep-alive expiry the live-FI gauge
	// returns to zero.
	if err := env.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "sky_cloudsim_live_fis", az); got != 0 {
		t.Fatalf("live FIs after keep-alive = %v, want 0", got)
	}
}

func TestCloudWithoutRegistryIsSilent(t *testing.T) {
	env, cloud := metricsWorld(t, nil, 64)
	if _, err := cloud.Deploy("m1-a", "fn", DeployConfig{
		MemoryMB: 2048, Behavior: SleepBehavior{D: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	env.Go("client", func(p *sim.Proc) error {
		if resp := cloud.Invoke(p, Request{Account: "a", AZ: "m1-a", Function: "fn"}); !resp.OK() {
			t.Errorf("invoke: %v", resp.Err)
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
