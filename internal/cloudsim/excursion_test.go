package cloudsim

import (
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// TestExcursionIsTransient drives the excursion path directly: a chunk of
// the pool flips to a perturbed mix and reverts within the hour (Fig. 8's
// isolated bad hours).
func TestExcursionIsTransient(t *testing.T) {
	env := sim.NewEnv(testEpoch)
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{{
			Name: "r-az", PoolFIs: 16000,
			Mix:     map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.Xeon30: 0.3, cpu.EPYC: 0.2},
			MixWalk: 0.6,
		}},
	}}
	cloud := New(env, 77, catalog, Options{HorizonDays: 1})
	az, _ := cloud.AZ("r-az")
	kindsOf := func() []cpu.Kind {
		out := make([]cpu.Kind, len(az.hosts))
		for i, h := range az.hosts {
			out[i] = h.kind
		}
		return out
	}
	diff := func(a, b []cpu.Kind) int {
		n := 0
		for i := range a {
			if a[i] != b[i] {
				n++
			}
		}
		return n
	}
	before := kindsOf()
	az.excursion()
	// Shortly after, a sizeable chunk of hosts carry swapped kinds...
	if err := env.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if changed := diff(before, kindsOf()); changed < len(before)/10 {
		t.Fatalf("excursion flipped only %d/%d hosts", changed, len(before))
	}
	// ...and an hour later every host carries its original kind again.
	if err := env.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if changed := diff(before, kindsOf()); changed != 0 {
		t.Fatalf("excursion did not revert: %d hosts still flipped", changed)
	}
}

// TestExcursionSparesBusyHosts verifies hosts with live instances are
// neither flipped nor force-restored mid-use.
func TestExcursionSparesBusyHosts(t *testing.T) {
	env := sim.NewEnv(testEpoch)
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{{
			Name: "r-az", PoolFIs: 256, // 2 hosts
			Mix:     map[cpu.Kind]float64{cpu.Xeon25: 1},
			MixWalk: 0.6,
		}},
	}}
	cloud := New(env, 77, catalog, Options{HorizonDays: 1})
	az, _ := cloud.AZ("r-az")
	if _, err := cloud.Deploy("r-az", "fn", DeployConfig{
		MemoryMB: 1024, Behavior: SleepBehavior{D: 2 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	// Occupy every slot so no host is idle.
	for i := 0; i < 256; i++ {
		cloud.StartInvoke(Request{Account: "a", AZ: "r-az", Function: "fn"}, func(Response) {})
	}
	if err := env.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	az.excursion()
	if err := env.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := az.TrueMix()[cpu.Xeon25]; got != 1 {
		t.Fatalf("busy hosts were flipped: %v", az.TrueMix())
	}
	env.Shutdown()
}

// TestHandlerCtxOps exercises the remaining handler-context surface:
// Compute, Sleep, cache helpers, and identity accessors.
func TestHandlerCtxOps(t *testing.T) {
	env := sim.NewEnv(testEpoch)
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{{Name: "r-az", PoolFIs: 256, Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}}},
	}}
	cloud := New(env, 3, catalog, Options{HorizonDays: 1})
	var computeDur time.Duration
	if _, err := cloud.Deploy("r-az", "handler", DeployConfig{
		MemoryMB: 2048,
		Behavior: HandlerBehavior{Fn: func(ctx *Ctx, req Request) (any, error) {
			if ctx.FIID() == "" || ctx.HostID() == "" {
				t.Error("missing instance identity")
			}
			if !ctx.Cold() {
				t.Error("first invocation not cold")
			}
			if ctx.Now().Before(testEpoch) {
				t.Error("clock broken")
			}
			if ctx.CacheHas("blob") {
				t.Error("cache pre-populated")
			}
			ctx.CachePut("blob")
			if !ctx.CacheHas("blob") {
				t.Error("cache put lost")
			}
			ctx.Sleep(50 * time.Millisecond)
			computeDur = ctx.Compute(WorkBehavior{Workload: workload.Sha1Hash})
			return "done", nil
		}},
	}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	env.Go("client", func(p *sim.Proc) error {
		resp = cloud.Invoke(p, Request{Account: "a", AZ: "r-az", Function: "handler"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() || resp.Value != "done" {
		t.Fatalf("resp = %+v", resp)
	}
	if computeDur <= 0 {
		t.Fatal("Compute returned no duration")
	}
	wantMS := 50 + float64(computeDur)/float64(time.Millisecond)
	if resp.BilledMS < wantMS || resp.BilledMS > wantMS+10 {
		t.Fatalf("billed %.1fms, want ~%.1f", resp.BilledMS, wantMS)
	}
}

// TestAccessors covers the thin read-only surface the experiments lean on.
func TestAccessors(t *testing.T) {
	env := sim.NewEnv(testEpoch)
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{Lat: 1, Lon: 2},
		AZs: []AZSpec{{Name: "r-az", PoolFIs: 256, Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}}},
	}}
	cloud := New(env, 3, catalog, Options{HorizonDays: 1})
	az, _ := cloud.AZ("r-az")
	if az.Name() != "r-az" || az.Region().Name() != "r" || az.Spec().PoolFIs != 256 {
		t.Fatal("AZ accessors broken")
	}
	if az.CapacityFIs() != 256 {
		t.Fatalf("capacity = %d", az.CapacityFIs())
	}
	dep, err := cloud.Deploy("r-az", "fn", DeployConfig{MemoryMB: 1024, Behavior: SleepBehavior{D: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Name() != "fn" || dep.MemoryMB() != 1024 || dep.AZName() != "r-az" {
		t.Fatal("deployment accessors broken")
	}
	var resp Response
	env.Go("client", func(p *sim.Proc) error {
		resp = cloud.Invoke(p, Request{Account: "a", AZ: "r-az", Function: "fn"})
		resp2 := cloud.Invoke(p, Request{Account: "a", AZ: "r-az", Function: "fn"})
		_ = resp2
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if resp.FI == "" {
		t.Fatal("no FI")
	}
	region, ok := cloud.Region("r")
	if !ok || region.Provider() != AWS || region.Loc().Lat != 1 {
		t.Fatal("region accessors broken")
	}
	if region.Spec().Name != "r" {
		t.Fatal("region spec broken")
	}
}
