package cloudsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// shardedWorld builds the default catalog on either engine. shards == 0 uses
// the plain single-queue Env; otherwise a Sharded group whose lookahead is
// half the intra-cloud RTT, matching how core wires it.
func shardedWorld(t *testing.T, shards int) (*sim.Env, *Cloud) {
	t.Helper()
	opts := Options{HorizonDays: 1}.WithDefaults()
	var env *sim.Env
	if shards > 1 {
		env = sim.NewSharded(testEpoch, shards, opts.IntraCloudRTT/2).Control()
	} else {
		env = sim.NewEnv(testEpoch)
	}
	return env, New(env, 42, DefaultCatalog(), opts)
}

// shardedDigest drives geo-distributed traffic into several regions and
// folds every response into a replay-stable transcript. Responses are
// recorded per target zone — each zone's responses arrive back on the
// control shard in simulated-time order, so the transcript is deterministic.
func shardedDigest(t *testing.T, shards int) string {
	t.Helper()
	env, c := shardedWorld(t, shards)
	zones := []string{"us-west-1a", "us-east-2a", "eu-north-1a", "sa-east-1a", "ap-northeast-1a"}
	for _, z := range zones {
		if _, err := c.Deploy(z, "fn", DeployConfig{
			MemoryMB: 2048,
			Behavior: WorkBehavior{Workload: workload.Zipper},
		}); err != nil {
			t.Fatal(err)
		}
	}
	client := geo.Coord{Lat: 37, Lon: -122}
	lines := make(map[string][]string)
	for round := 0; round < 6; round++ {
		for i, z := range zones {
			z, i, round := z, i, round
			env.Schedule(time.Duration(round*200+i*10)*time.Millisecond, func() {
				c.StartInvokeFrom(env, Request{
					Account:   "acct",
					AZ:        z,
					Function:  "fn",
					ClientLoc: &client,
				}, func(resp Response) {
					errStr := "ok"
					if resp.Err != nil {
						errStr = resp.Err.Error()
					}
					lines[z] = append(lines[z], fmt.Sprintf(
						"%s r%d %s cold=%t fi=%s cpu=%v billed=%.3f cost=%.9f at=%s",
						z, round, errStr, resp.Cold, resp.FI, resp.CPU,
						resp.BilledMS, resp.CostUSD, env.Now().Format(time.RFC3339Nano)))
				})
			})
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, z := range zones {
		for _, l := range lines[z] {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "meter=%s inflight=%d\n", c.Meter().String(), c.Inflight("acct", "us-west-1"))
	return b.String()
}

// TestShardedCloudMatchesSingleQueue asserts that geo-distributed invocation
// traffic — cold starts, warm reuse, billing, RTT draws — is byte-identical
// between the single-queue engine and the sharded engine, and that sharded
// runs replay exactly. Run under -race (the cloudsim package is in
// RACE_PKGS) this doubles as the cross-shard synchronization stress test.
func TestShardedCloudMatchesSingleQueue(t *testing.T) {
	single := shardedDigest(t, 0)
	if !strings.Contains(single, "ok") {
		t.Fatalf("no successful invocations:\n%s", single)
	}
	for _, shards := range []int{2, 4, 8} {
		got := shardedDigest(t, shards)
		if got != single {
			t.Errorf("shards=%d diverged from single-queue\n--- single ---\n%s--- sharded ---\n%s", shards, single, got)
		}
		if again := shardedDigest(t, shards); again != got {
			t.Errorf("shards=%d replay diverged", shards)
		}
	}
}
