package cloudsim

import (
	"fmt"
	"time"

	"skyfaas/internal/sim"
)

// This file is the warm-pool actuator surface: the primitives a predictive
// pre-warming policy (internal/warmpool) uses to provision idle instances
// ahead of demand. Pre-warmed FIs are ordinary FIs — they occupy host
// slots (so DriftBurst's idle-host redraw leaves their hosts alone), arm
// the normal keep-alive expiry, are reused LIFO by arriving requests, and
// their initialization is billed to the provisioning account under a
// "warmpool/<region>" bucket so the spend is separable in Billing rollups.
// Capacity held above keep-alive by a warm floor is billed too — at a
// discounted GB-time rate under "warmpool/hold/<region>" — so every policy
// pays for the instance-seconds it reserves, not just for explicit
// pre-warms.

// warmPoolPrefix namespaces warm-pool provisioning charges inside an
// account's meter buckets, one bucket per region so each stays
// single-writer under the sharded engine.
const warmPoolPrefix = "warmpool/"

// WarmHoldFactor prices floor-held warm capacity as this fraction of the
// compute GB-time rate, mirroring real providers' provisioned-concurrency
// discount: reserving a warm instance costs less than running one, but it
// is never free. This is what makes the warm-pool policy comparison honest
// — a reactive floor that tracks the traffic curve pays for every
// instance-second it holds, not just for explicit pre-warm initializations.
const WarmHoldFactor = 0.25

// WarmPoolBucket returns the meter bucket warm-pool provisioning in region
// is charged to.
func WarmPoolBucket(region string) string { return warmPoolPrefix + region }

// WarmHoldBucket returns the meter bucket floor-hold charges in region are
// billed to, separable from initialization spend in rollups but still under
// the warm-pool prefix.
func WarmHoldBucket(region string) string { return warmPoolPrefix + "hold/" + region }

// WarmPoolSpend returns an account's cumulative warm-pool spend across all
// regions — pre-warm initializations plus floor-hold charges — from the
// billing meter.
func (c *Cloud) WarmPoolSpend(account string) float64 {
	return c.meter.TotalPrefix(account, warmPoolPrefix)
}

// settleWarmHold bills the hold charge accrued since the last settlement to
// the deployment's floor account and restarts the clock. Held capacity is
// min(floor, live) — like real provisioned-concurrency pricing, the bill
// covers the capacity the floor reserves whether requests use it or not,
// but a floor the pool never actually reached costs nothing. Must run on
// the zone's shard.
func (az *AZ) settleWarmHold(dep *Deployment) float64 {
	now := az.env.Now()
	since := dep.floorSince
	dep.floorSince = now
	if dep.floorAccount == "" || dep.floor <= 0 {
		return 0
	}
	held := dep.floor
	if dep.live < held {
		held = dep.live
	}
	ms := float64(now.Sub(since)) / float64(time.Millisecond)
	if held <= 0 || ms <= 0 {
		return 0
	}
	price := az.cloud.prices[az.region.spec.Provider]
	cost := float64(held) * price.Cost(dep.memoryMB, ms) * WarmHoldFactor
	if cost > 0 {
		az.cloud.meter.ChargeIn(dep.floorAccount, WarmHoldBucket(az.region.spec.Name), cost)
	}
	return cost
}

// ProvisionResult reports one ensure-warm actuation on a deployment.
type ProvisionResult struct {
	AZ       string
	Function string
	// Live is the deployment's provisioned instance count after actuation
	// (busy + idle + still initializing); Idle counts only the reusable
	// warm instances, excluding ones whose init is still in flight.
	Live int
	Idle int
	// Requested is the deficit the actuator tried to fill; Provisioned is
	// what host capacity allowed.
	Requested   int
	Provisioned int
	// CostUSD is the total billed spend of this actuation: pre-warm
	// initializations plus the floor-hold charge accrued since the previous
	// actuation. HoldUSD is the hold component alone.
	CostUSD float64
	HoldUSD float64
	Err     error
}

// PreWarm provisions n idle instances of fn, billing each initialization to
// account. Instances are busy (and hold their host slot) for the duration
// of a cold-start-distributed init, then join the warm pool and arm the
// normal keep-alive expiry. Must run on the zone's shard. Returns how many
// instances host capacity allowed and the billed cost.
func (az *AZ) PreWarm(fn string, n int, account string) (int, float64, error) {
	dep, ok := az.deployments[fn]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s/%s", ErrNoSuchDeployment, az.spec.Name, fn)
	}
	price := az.cloud.prices[az.region.spec.Provider]
	provisioned := 0
	costUSD := 0.0
	for i := 0; i < n; i++ {
		host := az.placeHost(dep.arch)
		if host == nil {
			az.m.saturation.Inc()
			az.maybeScaleUp()
			break
		}
		fi := az.provisionFI(dep, host)
		// Initialization follows the same distribution as a request-path
		// cold start — including any injected cold-start spike — but is
		// billed (a pre-warm is platform work the account pays for, unlike
		// the free init a request absorbs as latency).
		ms := az.rand.LogNorm(0, az.cloud.opts.ColdStartSigma) * az.cloud.opts.ColdStartMS * az.fault.coldStartFactor()
		ms *= initMemoryFactor(dep.memoryMB)
		cost := price.Cost(dep.memoryMB, ms)
		az.cloud.meter.ChargeIn(account, WarmPoolBucket(az.region.spec.Name), cost)
		costUSD += cost
		provisioned++
		az.m.preWarms.Inc()
		az.env.Schedule(time.Duration(ms*float64(time.Millisecond)), func() {
			if fi.destroyed {
				return
			}
			fi.busy = false
			fi.idleGen++
			fi.dep.warm = append(fi.dep.warm, fi)
			az.armExpiry(fi)
		})
	}
	return provisioned, costUSD, nil
}

// SetWarmFloor sets the deployment's warm-pool floor: keep-alive expiry
// holds up to n idle instances alive instead of reaping them. Every idle
// instance is re-armed so a lowered floor reaps the excess after one
// keep-alive window (duplicate timers are voided by the idleGen check).
// Must run on the zone's shard.
func (az *AZ) SetWarmFloor(fn string, n int) error {
	dep, ok := az.deployments[fn]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoSuchDeployment, az.spec.Name, fn)
	}
	if n < 0 {
		n = 0
	}
	dep.floor = n
	for _, fi := range dep.warm {
		if !fi.destroyed && !fi.busy {
			az.armExpiry(fi)
		}
	}
	return nil
}

// WarmIdle reports fn's idle warm-instance count. Must run on the zone's
// shard (exposed for tests and same-shard policies).
func (az *AZ) WarmIdle(fn string) int {
	dep, ok := az.deployments[fn]
	if !ok {
		return 0
	}
	return dep.warmIdle()
}

// WarmLive reports fn's provisioned instance count (busy + idle +
// initializing). Must run on the zone's shard.
func (az *AZ) WarmLive(fn string) int {
	dep, ok := az.deployments[fn]
	if !ok {
		return 0
	}
	return dep.live
}

// StartEnsureWarm raises fn in azName toward target provisioned instances
// and sets its warm floor, from a caller on any shard: the command crosses
// to the zone's shard under the intra-cloud latency, settles the hold
// charge accrued under the previous floor, tops up the deficit (target
// minus currently provisioned instances) via PreWarm, and delivers the
// result back on the caller's shard. The deficit is measured against
// *live* instances, not idle ones, so a pool busy serving traffic is not
// doubled by re-provisioning what will be released back anyway.
func (c *Cloud) StartEnsureWarm(from *sim.Env, azName, fn string, target, floor int, account string, done func(ProvisionResult)) {
	oneWay := c.opts.IntraCloudRTT / 2
	az, ok := c.azBy[azName]
	if !ok {
		res := ProvisionResult{AZ: azName, Function: fn, Err: fmt.Errorf("%w: %q", ErrNoSuchAZ, azName)}
		from.Schedule(c.opts.IntraCloudRTT, func() { done(res) })
		return
	}
	from.SendTo(az.env, oneWay, func() {
		res := ProvisionResult{AZ: azName, Function: fn}
		if dep, ok := az.deployments[fn]; !ok {
			res.Err = fmt.Errorf("%w: %s/%s", ErrNoSuchDeployment, azName, fn)
		} else {
			// Settle the hold charge accrued under the previous floor before
			// applying the new one, then restart the clock under account.
			res.HoldUSD = az.settleWarmHold(dep)
			dep.floorAccount = account
			_ = az.SetWarmFloor(fn, floor)
			if deficit := target - dep.live; deficit > 0 {
				res.Requested = deficit
				res.Provisioned, res.CostUSD, _ = az.PreWarm(fn, deficit, account)
			}
			res.CostUSD += res.HoldUSD
			res.Live = dep.live
			res.Idle = dep.warmIdle()
		}
		az.env.SendTo(from, oneWay, func() { done(res) })
	})
}
