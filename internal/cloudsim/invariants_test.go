package cloudsim

import (
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// checkAZInvariants asserts the structural invariants of a zone's state.
func checkAZInvariants(t *testing.T, az *AZ) {
	t.Helper()
	live := 0
	for _, h := range az.hosts {
		if h.used < 0 || h.used > h.slots {
			t.Fatalf("host %s used=%d slots=%d", h.id, h.used, h.slots)
		}
		live += h.used
	}
	for _, h := range az.armHosts {
		if h.used < 0 || h.used > h.slots {
			t.Fatalf("arm host %s used=%d slots=%d", h.id, h.used, h.slots)
		}
		live += h.used
	}
	if live != az.LiveFIs() {
		t.Fatalf("liveFIs=%d but hosts hold %d", az.LiveFIs(), live)
	}
	// The true mix is a distribution.
	var sum float64
	for _, share := range az.TrueMix() {
		if share < 0 {
			t.Fatalf("negative share in true mix")
		}
		sum += share
	}
	if len(az.hosts) > 0 && (sum < 0.999 || sum > 1.001) {
		t.Fatalf("true mix sums to %v", sum)
	}
}

// TestInvariantsUnderRandomChurn drives a zone with a randomized mixture of
// sleeps, workloads, probes (declining and not), drift ticks, and saturation
// pressure, checking invariants throughout. This is the failure-injection
// sweep for the platform mechanics.
func TestInvariantsUnderRandomChurn(t *testing.T) {
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{{
			Name:        "r-az",
			PoolFIs:     768, // small: saturation pressure is frequent
			ArmPoolFIs:  128,
			Mix:         map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.Xeon30: 0.3, cpu.EPYC: 0.2},
			DailyDrift:  0.5,
			MixWalk:     0.3,
			CapJitter:   0.2,
			HourlyDrift: 0.05,
			ReserveFrac: 0.2,
			ReserveMix:  map[cpu.Kind]float64{cpu.Xeon29: 1},
		}},
	}}
	cloud := New(env, 1234, catalog, Options{HorizonDays: 3, Quota: 200})
	az, _ := cloud.AZ("r-az")

	if _, err := cloud.Deploy("r-az", "sleepy", DeployConfig{
		MemoryMB: 512, Behavior: SleepBehavior{D: 400 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.Deploy("r-az", "dyn", DeployConfig{
		MemoryMB: 2048, Dynamic: true, Behavior: SleepBehavior{D: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.Deploy("r-az", "armfn", DeployConfig{
		MemoryMB: 1024, Arch: cpu.ARM, Behavior: SleepBehavior{D: 50 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}

	s := rng.New(99)
	responses := 0
	issue := func() {
		req := Request{Account: "acct", AZ: "r-az"}
		switch s.Intn(4) {
		case 0:
			req.Function = "sleepy"
		case 1:
			req.Function = "dyn"
			req.Work = WorkBehavior{Workload: workload.Sha1Hash, Scale: 0.2}
			req.PayloadHash = "h"
		case 2:
			req.Function = "dyn"
			req.Work = ProbeBehavior{
				Work:   WorkBehavior{Workload: workload.Sha1Hash, Scale: 0.2},
				Banned: maybeBan(cpu.MaskOf(cpu.EPYC), cpu.Xeon25, s.Bool(0.5)),
				HoldMS: 50,
			}
		default:
			req.Function = "armfn"
		}
		cloud.StartInvoke(req, func(Response) { responses++ })
	}

	// 40 waves of up to 60 requests over ~80 virtual minutes, crossing
	// several hourly drift ticks and keep-alive expirations.
	issued := 0
	for wave := 0; wave < 40; wave++ {
		n := 1 + s.Intn(60)
		for i := 0; i < n; i++ {
			issue()
			issued++
		}
		target := time.Duration(wave+1) * 2 * time.Minute
		if err := env.RunFor(target - env.Elapsed()); err != nil {
			t.Fatal(err)
		}
		checkAZInvariants(t, az)
	}
	// Drain everything, including the keep-alive tail.
	if err := env.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkAZInvariants(t, az)
	if responses != issued {
		t.Fatalf("issued %d requests, %d responses", issued, responses)
	}
	if got := cloud.Inflight("acct", "r"); got != 0 {
		t.Fatalf("inflight after drain = %d", got)
	}
	// After the keep-alive window with no traffic, instances are reaped.
	if err := env.RunFor(6 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if az.LiveFIs() != 0 {
		t.Fatalf("live FIs after idle window = %d", az.LiveFIs())
	}
	env.Shutdown()
}

// TestDriftPreservesInvariants runs many drift cycles with live load and
// verifies capacity jitter and reprovisioning never corrupt the pool.
func TestDriftPreservesInvariants(t *testing.T) {
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	// The real volatile-zone personality (us-west-1*) on a realistically
	// sized pool.
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{{
			Name: "r-az", PoolFIs: 16000,
			Mix:        map[cpu.Kind]float64{cpu.Xeon25: 0.6, cpu.Xeon30: 0.4},
			DailyDrift: 0.8, MixWalk: 0.6, CapJitter: 0.15,
		}},
	}}
	cloud := New(env, 5, catalog, Options{HorizonDays: 20})
	az, _ := cloud.AZ("r-az")
	if _, err := cloud.Deploy("r-az", "fn", DeployConfig{
		MemoryMB: 1024, Behavior: SleepBehavior{D: 30 * time.Minute}, // long-lived FIs pin hosts
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		cloud.StartInvoke(Request{Account: "a", AZ: "r-az", Function: "fn"}, func(Response) {})
	}
	for day := 1; day <= 20; day++ {
		if err := env.RunFor(24*time.Hour*time.Duration(day) - env.Elapsed()); err != nil {
			t.Fatal(err)
		}
		checkAZInvariants(t, az)
		if az.HostCount() < 1 {
			t.Fatal("pool emptied")
		}
	}
	// Mean reversion keeps the mix anchored: both kinds survive 20 days of
	// violent drift.
	truth := az.TrueMix()
	if truth[cpu.Xeon25] == 0 || truth[cpu.Xeon30] == 0 {
		t.Errorf("a CPU kind went extinct under drift: %v", truth)
	}
	env.Shutdown()
}

// TestProbeDeclineReleasesQuota verifies the decline path returns quota and
// capacity even though it bypasses the normal finish path.
func TestProbeDeclineReleasesQuota(t *testing.T) {
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{{Name: "r-az", PoolFIs: 256, Mix: map[cpu.Kind]float64{cpu.EPYC: 1}}},
	}}
	cloud := New(env, 9, catalog, Options{HorizonDays: 1, Quota: 100})
	az, _ := cloud.AZ("r-az")
	if _, err := cloud.Deploy("r-az", "dyn", DeployConfig{
		MemoryMB: 1024, Dynamic: true, Behavior: SleepBehavior{D: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	declined := 0
	for i := 0; i < 100; i++ {
		cloud.StartInvoke(Request{
			Account: "a", AZ: "r-az", Function: "dyn",
			Work: ProbeBehavior{
				Work:   WorkBehavior{Workload: workload.Sha1Hash},
				Banned: cpu.MaskOf(cpu.EPYC),
			},
		}, func(r Response) {
			if r.OK() {
				if out, ok := r.Value.(ProbeOutcome); ok && !out.Ran {
					declined++
				}
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if declined != 100 {
		t.Fatalf("declined = %d, want all 100 (pure banned zone)", declined)
	}
	if got := cloud.Inflight("a", "r"); got != 0 {
		t.Fatalf("inflight after declines = %d", got)
	}
	// Terminated-on-decline: no instances linger.
	if az.LiveFIs() != 0 {
		t.Fatalf("live FIs after declines = %d (should self-terminate)", az.LiveFIs())
	}
	checkAZInvariants(t, az)
}

// TestProbeKeepOnDecline verifies the opt-out path recycles instances.
func TestProbeKeepOnDecline(t *testing.T) {
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	catalog := []RegionSpec{{
		Provider: AWS, Name: "r", Loc: geo.Coord{},
		AZs: []AZSpec{{Name: "r-az", PoolFIs: 256, Mix: map[cpu.Kind]float64{cpu.EPYC: 1}}},
	}}
	cloud := New(env, 9, catalog, Options{HorizonDays: 1})
	az, _ := cloud.AZ("r-az")
	if _, err := cloud.Deploy("r-az", "dyn", DeployConfig{
		MemoryMB: 1024, Dynamic: true, Behavior: SleepBehavior{D: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	cloud.StartInvoke(Request{
		Account: "a", AZ: "r-az", Function: "dyn",
		Work: ProbeBehavior{
			Work:          WorkBehavior{Workload: workload.Sha1Hash},
			Banned:        cpu.MaskOf(cpu.EPYC),
			KeepOnDecline: true,
		},
	}, func(Response) {})
	if err := env.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if az.LiveFIs() != 1 {
		t.Fatalf("live FIs = %d, want 1 kept warm", az.LiveFIs())
	}
	env.Shutdown()
}

// maybeBan adds k to m when cond holds — a branch-free literal for
// randomized ban sets in the property tests.
func maybeBan(m cpu.Mask, k cpu.Kind, cond bool) cpu.Mask {
	if cond {
		return m.Add(k)
	}
	return m
}
