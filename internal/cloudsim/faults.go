package cloudsim

import (
	"time"
)

// faultState is one zone's currently injected platform pathology. The zero
// value means a healthy zone; every field is applied multiplicatively on
// top of the zone's organic behavior, so chaos composes with (rather than
// replaces) drift, contention, and saturation.
//
// The fields are only ever mutated from inside the simulation (via the AZ
// setters below, normally driven by an internal/chaos Injector), so no
// locking is needed: the kernel is single-threaded by construction.
type faultState struct {
	// outage rejects every arriving request — the AZ is unreachable.
	outage bool
	// throttleRate is the probability an arriving request is rejected with
	// ErrThrottled regardless of the account's real quota usage (a 429
	// storm). 0 disables; draws come from the zone's own rng stream and
	// are only taken while a storm is active, so calm runs consume the
	// exact RNG sequence they did before chaos existed.
	throttleRate float64
	// coldStartMult scales the lognormal cold-start initialization delay
	// (a cold-start spike; 0 or 1 = normal).
	coldStartMult float64
	// extraRTT is added to every round trip touching the zone (elevated
	// cross-region RTT; one-way gets half).
	extraRTT time.Duration
}

// FaultSnapshot reports a zone's currently injected faults (for admin
// endpoints and tests).
type FaultSnapshot struct {
	AZ            string
	Outage        bool
	ThrottleRate  float64
	ColdStartMult float64
	ExtraRTT      time.Duration
}

// Faulted reports whether any fault is active.
func (f FaultSnapshot) Faulted() bool {
	return f.Outage || f.ThrottleRate > 0 || (f.ColdStartMult != 0 && f.ColdStartMult != 1) || f.ExtraRTT > 0
}

// SetOutage makes the zone reject every request with ErrZoneOutage (on) or
// restores reachability (off).
func (az *AZ) SetOutage(on bool) { az.fault.outage = on }

// SetThrottleStorm sets the probability an arriving request is spuriously
// throttled (0 ends the storm). Rates are clamped to [0, 1].
func (az *AZ) SetThrottleStorm(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	az.fault.throttleRate = rate
}

// SetColdStartSpike scales cold-start initialization by mult (1 or 0
// restores normal behavior).
func (az *AZ) SetColdStartSpike(mult float64) {
	if mult < 0 {
		mult = 0
	}
	az.fault.coldStartMult = mult
}

// SetExtraRTT adds d to every round trip touching the zone (0 restores).
func (az *AZ) SetExtraRTT(d time.Duration) {
	if d < 0 {
		d = 0
	}
	az.fault.extraRTT = d
}

// DriftBurst immediately re-draws frac of the zone's idle x86 hosts from a
// perturbed target mix (walk step `step`), without moving the zone's
// long-term target — a characterization-poisoning event: any stored
// characterization goes stale the moment the burst lands, exactly like the
// short-lived capacity reshuffles behind the paper's Fig. 8 bad hours.
func (az *AZ) DriftBurst(frac, step float64) {
	if frac <= 0 {
		return
	}
	perturbed := walkMix(az.rand, az.targetMix, step)
	az.replaceIdleHostsFrom(frac, perturbed)
}

// FaultSnapshot returns the zone's current fault state.
func (az *AZ) FaultSnapshot() FaultSnapshot {
	return FaultSnapshot{
		AZ:            az.spec.Name,
		Outage:        az.fault.outage,
		ThrottleRate:  az.fault.throttleRate,
		ColdStartMult: az.fault.coldStartMult,
		ExtraRTT:      az.fault.extraRTT,
	}
}

// coldStartFactor is the chaos multiplier applied to cold-start init time.
func (f faultState) coldStartFactor() float64 {
	if f.coldStartMult <= 0 {
		return 1
	}
	return f.coldStartMult
}

// rejectChaos applies the zone's active reject-class faults to an arriving
// request: a full outage rejects everything; a throttle storm rejects a
// random fraction. It returns the rejection error, or nil to admit.
func (az *AZ) rejectChaos() error {
	if az.fault.outage {
		az.m.faultOutage.Inc()
		return ErrZoneOutage
	}
	if az.fault.throttleRate > 0 && az.rand.Bool(az.fault.throttleRate) {
		az.m.faultThrottle.Inc()
		return ErrThrottled
	}
	return nil
}
