package cloudsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// PriceModel is a FaaS platform's published rate card.
type PriceModel struct {
	// PerGBSecond is the compute price per GB-second of billed duration.
	PerGBSecond float64
	// PerRequest is the flat per-invocation price.
	PerRequest float64
	// GranularityMS is the billing rounding unit (1 ms on AWS Lambda).
	GranularityMS float64
}

// defaultPrices carries each provider's published x86 rate card.
func defaultPrices() map[Provider]PriceModel {
	return map[Provider]PriceModel{
		AWS: {PerGBSecond: 0.0000166667, PerRequest: 0.0000002, GranularityMS: 1},
		IBM: {PerGBSecond: 0.000017, PerRequest: 0, GranularityMS: 100},
		DO:  {PerGBSecond: 0.0000185, PerRequest: 0, GranularityMS: 1},
	}
}

// Cost computes the charge for one invocation of memoryMB at runtimeMS.
func (p PriceModel) Cost(memoryMB int, runtimeMS float64) float64 {
	if runtimeMS < 0 {
		runtimeMS = 0
	}
	billed := runtimeMS
	if p.GranularityMS > 0 {
		billed = math.Ceil(runtimeMS/p.GranularityMS) * p.GranularityMS
	}
	gb := float64(memoryMB) / 1024
	return gb*(billed/1000)*p.PerGBSecond + p.PerRequest
}

// Meter accumulates spend, grouped by a caller-chosen label (experiment
// phase, policy name, account). Meters are safe for concurrent use so the
// live-paced examples — and the sharded engine's parallel region shards —
// can share one across goroutines.
//
// Charges accumulate per (label, bucket): the cloud buckets by region, so
// each bucket only ever receives charges from one shard, in that shard's
// deterministic event order. Totals sum buckets in sorted order, keeping
// the floating-point result bit-identical regardless of how shard execution
// interleaved.
type Meter struct {
	mu sync.Mutex
	// byLabel is cumulative spend per label, split by bucket; guarded by mu.
	byLabel map[string]map[string]float64
	// requests counts charges per label; guarded by mu.
	requests map[string]int
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		byLabel:  make(map[string]map[string]float64),
		requests: make(map[string]int),
	}
}

// Charge records cost under label in the default bucket.
func (m *Meter) Charge(label string, cost float64) {
	m.ChargeIn(label, "", cost)
}

// ChargeIn records cost under label in the named bucket. Callers that can
// charge concurrently from several shards must use a bucket per shard-owned
// domain (the cloud uses the region name) so per-bucket accumulation order
// stays deterministic.
func (m *Meter) ChargeIn(label, bucket string, cost float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buckets, ok := m.byLabel[label]
	if !ok {
		buckets = make(map[string]float64)
		m.byLabel[label] = buckets
	}
	buckets[bucket] += cost
	m.requests[label]++
}

// Total returns the cumulative spend under label, summed over buckets in
// sorted order so the float result is replay-stable.
func (m *Meter) Total(label string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sumBuckets(m.byLabel[label])
}

// sumBuckets adds a label's buckets in sorted key order. Callers hold mu.
func sumBuckets(buckets map[string]float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += buckets[k]
	}
	return sum
}

// TotalPrefix returns label's cumulative spend across buckets whose name
// starts with prefix, summed in sorted order so the float result is
// replay-stable. The cloud buckets warm-pool provisioning under
// "warmpool/<region>", so TotalPrefix(account, "warmpool/") isolates that
// spend from the same rollup Total reports in full.
func (m *Meter) TotalPrefix(label, prefix string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	buckets := m.byLabel[label]
	if len(buckets) == 0 {
		return 0
	}
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += buckets[k]
	}
	return sum
}

// Requests returns the number of charges recorded under label.
func (m *Meter) Requests(label string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[label]
}

// GrandTotal returns spend across every label. Summation follows sorted
// label order so the result is bit-identical across runs regardless of map
// iteration order.
func (m *Meter) GrandTotal() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	labels := make([]string, 0, len(m.byLabel))
	for label := range m.byLabel {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var sum float64
	for _, label := range labels {
		sum += sumBuckets(m.byLabel[label])
	}
	return sum
}

// String renders the grand total.
func (m *Meter) String() string {
	return fmt.Sprintf("$%.4f", m.GrandTotal())
}
