package cloudsim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// PriceModel is a FaaS platform's published rate card.
type PriceModel struct {
	// PerGBSecond is the compute price per GB-second of billed duration.
	PerGBSecond float64
	// PerRequest is the flat per-invocation price.
	PerRequest float64
	// GranularityMS is the billing rounding unit (1 ms on AWS Lambda).
	GranularityMS float64
}

// defaultPrices carries each provider's published x86 rate card.
func defaultPrices() map[Provider]PriceModel {
	return map[Provider]PriceModel{
		AWS: {PerGBSecond: 0.0000166667, PerRequest: 0.0000002, GranularityMS: 1},
		IBM: {PerGBSecond: 0.000017, PerRequest: 0, GranularityMS: 100},
		DO:  {PerGBSecond: 0.0000185, PerRequest: 0, GranularityMS: 1},
	}
}

// Cost computes the charge for one invocation of memoryMB at runtimeMS.
func (p PriceModel) Cost(memoryMB int, runtimeMS float64) float64 {
	if runtimeMS < 0 {
		runtimeMS = 0
	}
	billed := runtimeMS
	if p.GranularityMS > 0 {
		billed = math.Ceil(runtimeMS/p.GranularityMS) * p.GranularityMS
	}
	gb := float64(memoryMB) / 1024
	return gb*(billed/1000)*p.PerGBSecond + p.PerRequest
}

// Meter accumulates spend, grouped by a caller-chosen label (experiment
// phase, policy name, account). Meters are safe for concurrent use so the
// live-paced examples can share one across goroutines.
type Meter struct {
	mu sync.Mutex
	// byLabel is cumulative spend per label; guarded by mu.
	byLabel map[string]float64
	// requests counts charges per label; guarded by mu.
	requests map[string]int
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		byLabel:  make(map[string]float64),
		requests: make(map[string]int),
	}
}

// Charge records cost under label.
func (m *Meter) Charge(label string, cost float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byLabel[label] += cost
	m.requests[label]++
}

// Total returns the cumulative spend under label.
func (m *Meter) Total(label string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byLabel[label]
}

// Requests returns the number of charges recorded under label.
func (m *Meter) Requests(label string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[label]
}

// GrandTotal returns spend across every label. Summation follows sorted
// label order so the result is bit-identical across runs regardless of map
// iteration order.
func (m *Meter) GrandTotal() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	labels := make([]string, 0, len(m.byLabel))
	for label := range m.byLabel {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var sum float64
	for _, label := range labels {
		sum += m.byLabel[label]
	}
	return sum
}

// String renders the grand total.
func (m *Meter) String() string {
	return fmt.Sprintf("$%.4f", m.GrandTotal())
}
