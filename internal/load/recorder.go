package load

import (
	"fmt"
	"sync/atomic"
	"time"

	"skyfaas/internal/metrics"
	"skyfaas/internal/tablefmt"
)

// Outcome classifies one completed request.
type Outcome string

// The request outcomes a Recorder distinguishes.
const (
	// OK is a successfully served request.
	OK Outcome = "ok"
	// Shed is a request the admission gate rejected (HTTP 429).
	Shed Outcome = "shed"
	// Errored is any other failure (transport error, 5xx, timeout).
	Errored Outcome = "error"
)

// LatencyBuckets are the log-spaced histogram bounds (milliseconds) every
// load report uses: 1ms × 1.5^i up to ~3.8 minutes, fine enough near typical
// FaaS service times and wide enough for retry-inflated tails.
func LatencyBuckets() []float64 { return metrics.ExpBuckets(1, 1.5, 31) }

// Recorder accumulates per-request results. All methods are safe for
// concurrent use — skyload fires one goroutine per in-flight request — and
// rely on the atomic histogram/counter primitives, so recording never takes
// a lock on the request path.
type Recorder struct {
	ok      *metrics.Histogram // latency of served requests (ms)
	shed    *metrics.Histogram // latency of shed requests (ms)
	errored *metrics.Histogram // latency of failed requests (ms)

	retryAfterMS metrics.Counter // sum of server-suggested Retry-After (ms)
	inflight     atomic.Int64
	maxInflight  atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		ok:      metrics.NewHistogram(LatencyBuckets()),
		shed:    metrics.NewHistogram(LatencyBuckets()),
		errored: metrics.NewHistogram(LatencyBuckets()),
	}
}

// Begin notes a request entering flight and returns the new in-flight count.
func (r *Recorder) Begin() int64 {
	n := r.inflight.Add(1)
	for {
		max := r.maxInflight.Load()
		if n <= max || r.maxInflight.CompareAndSwap(max, n) {
			return n
		}
	}
}

// Record notes a completed request: its outcome and end-to-end latency.
// Every Begin must be paired with exactly one Record.
func (r *Recorder) Record(o Outcome, latencyMS float64) {
	r.inflight.Add(-1)
	switch o {
	case Shed:
		r.shed.Observe(latencyMS)
	case Errored:
		r.errored.Observe(latencyMS)
	default:
		r.ok.Observe(latencyMS)
	}
}

// RecordRetryAfter accumulates a shed response's Retry-After hint so the
// report can quote the mean backoff the server asked for.
func (r *Recorder) RecordRetryAfter(d time.Duration) {
	r.retryAfterMS.Add(uint64(d.Milliseconds()))
}

// Report digests the recorder into a results report. offeredRPS is the
// generator's intended mean rate; elapsed is the measured span the rates are
// computed over.
func (r *Recorder) Report(offeredRPS float64, elapsed time.Duration) Report {
	ok := r.ok.Snapshot().Summary()
	shed := r.shed.Snapshot().Summary()
	errored := r.errored.Snapshot().Summary()
	rep := Report{
		OfferedRPS:  offeredRPS,
		ElapsedSec:  elapsed.Seconds(),
		Requests:    ok.Count + shed.Count + errored.Count,
		OK:          ok.Count,
		Shed:        shed.Count,
		Errors:      errored.Count,
		Latency:     ok,
		ShedLat:     shed,
		MaxInFlight: r.maxInflight.Load(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.AchievedRPS = float64(rep.Requests) / sec
		rep.GoodputRPS = float64(rep.OK) / sec
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	if rep.Shed > 0 {
		rep.MeanRetryAfterMS = float64(r.retryAfterMS.Value()) / float64(rep.Shed)
	}
	return rep
}

// Report is one load run's results: achieved throughput, the latency digest
// of served requests, and the shed/error breakdown. It marshals directly to
// the skyload -json output.
type Report struct {
	OfferedRPS  float64 `json:"offeredRPS"`
	AchievedRPS float64 `json:"achievedRPS"` // completions (any outcome) / sec
	GoodputRPS  float64 `json:"goodputRPS"`  // served requests / sec
	ElapsedSec  float64 `json:"elapsedSec"`

	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`

	ShedRate  float64 `json:"shedRate"`
	ErrorRate float64 `json:"errorRate"`

	// Latency digests served requests only; ShedLat shows how fast the
	// server turned away the rest (sheds should be cheap).
	Latency metrics.Summary `json:"latencyMS"`
	ShedLat metrics.Summary `json:"shedLatencyMS"`

	MeanRetryAfterMS float64 `json:"meanRetryAfterMS"`
	MaxInFlight      int64   `json:"maxInFlight"`
}

// Render formats the report as the human-readable results table.
func (r Report) Render() string {
	t := tablefmt.New("metric", "value")
	t.Row("offered RPS", fmt.Sprintf("%.2f", r.OfferedRPS))
	t.Row("achieved RPS", fmt.Sprintf("%.2f", r.AchievedRPS))
	t.Row("goodput RPS", fmt.Sprintf("%.2f", r.GoodputRPS))
	t.Row("requests", fmt.Sprintf("%d", r.Requests))
	t.Row("served", fmt.Sprintf("%d", r.OK))
	t.Row("shed (429)", fmt.Sprintf("%d (%s)", r.Shed, tablefmt.Pct(r.ShedRate)))
	t.Row("errors", fmt.Sprintf("%d (%s)", r.Errors, tablefmt.Pct(r.ErrorRate)))
	t.Row("latency p50 ms", fmt.Sprintf("%.1f", r.Latency.P50))
	t.Row("latency p90 ms", fmt.Sprintf("%.1f", r.Latency.P90))
	t.Row("latency p95 ms", fmt.Sprintf("%.1f", r.Latency.P95))
	t.Row("latency p99 ms", fmt.Sprintf("%.1f", r.Latency.P99))
	t.Row("latency mean ms", fmt.Sprintf("%.1f", r.Latency.Mean))
	if r.Shed > 0 {
		t.Row("shed p99 ms", fmt.Sprintf("%.1f", r.ShedLat.P99))
		t.Row("mean retry-after ms", fmt.Sprintf("%.0f", r.MeanRetryAfterMS))
	}
	t.Row("max in-flight", fmt.Sprintf("%d", r.MaxInFlight))
	return t.String()
}
