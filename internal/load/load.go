// Package load is the open-model load-generation core shared by the
// skyload CLI (wall-clock, against a live skyd) and EX-8 (virtual-time,
// inside the deterministic simulation). It produces arrival schedules for
// constant / ramp / diurnal RPS curves, draws a per-request function from a
// weighted workload mix, and records per-request outcomes into log-bucketed
// latency histograms that render as a results report.
//
// Open model means arrivals are scheduled by the offered-load curve alone:
// a slow or shedding server does not slow the generator down, which is what
// exposes overload behavior (closed-loop generators self-throttle and hide
// it — the SCOPE paper's central measurement complaint).
package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"skyfaas/internal/rng"
	"skyfaas/internal/workload"
)

// Pattern names an offered-load curve shape.
type Pattern string

// The supported arrival patterns.
const (
	// Constant offers PeakRPS for the whole duration.
	Constant Pattern = "constant"
	// Ramp grows linearly from BaseRPS to PeakRPS over the duration.
	Ramp Pattern = "ramp"
	// Diurnal follows one (or more) sinusoidal day curves between BaseRPS
	// and PeakRPS, starting at the trough.
	Diurnal Pattern = "diurnal"
)

// Patterns lists the valid pattern names.
func Patterns() []Pattern { return []Pattern{Constant, Ramp, Diurnal} }

// ValidPattern reports whether p names a known pattern.
func ValidPattern(p Pattern) bool {
	for _, k := range Patterns() {
		if p == k {
			return true
		}
	}
	return false
}

// Schedule describes one deterministic open-loop arrival process.
type Schedule struct {
	// Pattern is the curve shape (default Constant).
	Pattern Pattern
	// PeakRPS is the curve's peak offered rate (required > 0).
	PeakRPS float64
	// BaseRPS is the ramp start / diurnal trough (default 0 for Ramp,
	// PeakRPS/4 for Diurnal; ignored by Constant).
	BaseRPS float64
	// Duration is the total offered-load span (required > 0).
	Duration time.Duration
	// Period is the diurnal cycle length (default Duration: one day fills
	// the run).
	Period time.Duration
	// Slice is the rate-integration step (default 100ms). Arrivals are
	// placed within each slice, so a finer slice tracks steep curves more
	// closely at the cost of a longer schedule computation.
	Slice time.Duration
}

func (s Schedule) withDefaults() Schedule {
	if s.Pattern == "" {
		s.Pattern = Constant
	}
	if s.Pattern == Diurnal && s.BaseRPS == 0 {
		s.BaseRPS = s.PeakRPS / 4
	}
	if s.Period == 0 {
		s.Period = s.Duration
	}
	if s.Slice == 0 {
		s.Slice = 100 * time.Millisecond
	}
	return s
}

// Validate reports whether the schedule is runnable.
func (s Schedule) Validate() error {
	s = s.withDefaults()
	if !ValidPattern(s.Pattern) {
		return fmt.Errorf("load: unknown pattern %q", s.Pattern)
	}
	if s.PeakRPS <= 0 {
		return fmt.Errorf("load: non-positive peak RPS %v", s.PeakRPS)
	}
	if s.BaseRPS < 0 || s.BaseRPS > s.PeakRPS {
		return fmt.Errorf("load: base RPS %v outside [0, peak %v]", s.BaseRPS, s.PeakRPS)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("load: non-positive duration %v", s.Duration)
	}
	return nil
}

// Rate returns the offered rate (requests/second) at offset t.
func (s Schedule) Rate(t time.Duration) float64 {
	s = s.withDefaults()
	if t < 0 || t > s.Duration {
		return 0
	}
	switch s.Pattern {
	case Ramp:
		frac := float64(t) / float64(s.Duration)
		return s.BaseRPS + (s.PeakRPS-s.BaseRPS)*frac
	case Diurnal:
		mid := (s.PeakRPS + s.BaseRPS) / 2
		amp := (s.PeakRPS - s.BaseRPS) / 2
		phase := 2 * math.Pi * float64(t) / float64(s.Period)
		return mid - amp*math.Cos(phase)
	default:
		return s.PeakRPS
	}
}

// OfferedRPS is the schedule's mean offered rate over its duration.
func (s Schedule) OfferedRPS() float64 {
	s = s.withDefaults()
	switch s.Pattern {
	case Ramp:
		return (s.BaseRPS + s.PeakRPS) / 2
	case Diurnal:
		// Whole cycles average to the midpoint; partial cycles are close
		// enough for reporting, and Arrivals integrates exactly anyway.
		return (s.BaseRPS + s.PeakRPS) / 2
	default:
		return s.PeakRPS
	}
}

// Arrivals expands the schedule into sorted arrival offsets from the run
// start. The expansion is a pure function of the schedule and the stream:
// each slice contributes rate×slice expected arrivals (fractional credit
// carries over, so no load is lost to rounding), placed evenly within the
// slice, or uniformly jittered within it when stream is non-nil. Equal
// schedules and equal streams produce identical offset lists.
func (s Schedule) Arrivals(stream *rng.Stream) []time.Duration {
	s = s.withDefaults()
	if s.Validate() != nil {
		return nil
	}
	out := make([]time.Duration, 0, int(s.OfferedRPS()*s.Duration.Seconds())+1)
	credit := 0.0
	for at := time.Duration(0); at < s.Duration; at += s.Slice {
		slice := s.Slice
		if at+slice > s.Duration {
			slice = s.Duration - at
		}
		mid := at + slice/2
		credit += s.Rate(mid) * slice.Seconds()
		n := int(credit)
		if n == 0 {
			continue
		}
		credit -= float64(n)
		for i := 0; i < n; i++ {
			var frac float64
			if stream != nil {
				frac = stream.Float64()
			} else {
				frac = (float64(i) + 0.5) / float64(n)
			}
			out = append(out, at+time.Duration(frac*float64(slice)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Function mix

// MixEntry weights one catalog workload within a mix.
type MixEntry struct {
	Workload workload.ID
	Weight   float64
}

// Mix is a weighted set of workloads requests are drawn from.
type Mix []MixEntry

// SingleMix is the degenerate mix: every request runs w.
func SingleMix(w workload.ID) Mix { return Mix{{Workload: w, Weight: 1}} }

// ParseMix parses "name=weight,name=weight" (weight defaults to 1 when the
// "=weight" part is omitted) against the workload catalog.
func ParseMix(s string) (Mix, error) {
	var mix Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, "=")
		spec, ok := workload.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("load: unknown workload %q in mix", name)
		}
		weight := 1.0
		if hasWeight {
			w, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("load: bad weight %q for %s", weightStr, spec.Name)
			}
			weight = w
		}
		mix = append(mix, MixEntry{Workload: spec.ID, Weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("load: empty mix")
	}
	return mix, nil
}

// Pick draws one workload from the mix. A nil stream returns the heaviest
// (first on ties) entry, so single-entry mixes need no randomness.
func (m Mix) Pick(stream *rng.Stream) workload.ID {
	if len(m) == 0 {
		return 0
	}
	if stream == nil || len(m) == 1 {
		best := m[0]
		for _, e := range m[1:] {
			if e.Weight > best.Weight {
				best = e
			}
		}
		return best.Workload
	}
	weights := make([]float64, len(m))
	for i, e := range m {
		weights[i] = e.Weight
	}
	return m[stream.WeightedChoice(weights)].Workload
}

// String renders the mix as the ParseMix input form.
func (m Mix) String() string {
	parts := make([]string, len(m))
	for i, e := range m {
		parts[i] = fmt.Sprintf("%s=%g", e.Workload, e.Weight)
	}
	return strings.Join(parts, ",")
}
