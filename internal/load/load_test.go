package load

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"skyfaas/internal/rng"
	"skyfaas/internal/workload"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{PeakRPS: 10, Duration: time.Minute}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{PeakRPS: 0, Duration: time.Minute},
		{PeakRPS: 10, Duration: 0},
		{PeakRPS: 10, BaseRPS: 20, Duration: time.Minute, Pattern: Ramp},
		{PeakRPS: 10, Duration: time.Minute, Pattern: "sawtooth"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted: %+v", i, s)
		}
	}
}

func TestConstantArrivalCount(t *testing.T) {
	s := Schedule{Pattern: Constant, PeakRPS: 50, Duration: 10 * time.Second}
	got := s.Arrivals(nil)
	if want := 500; len(got) != want {
		t.Fatalf("constant 50rps x 10s: %d arrivals, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
	if last := got[len(got)-1]; last >= s.Duration {
		t.Errorf("arrival %v beyond duration %v", last, s.Duration)
	}
}

func TestRampArrivalCount(t *testing.T) {
	s := Schedule{Pattern: Ramp, BaseRPS: 0, PeakRPS: 100, Duration: 10 * time.Second}
	got := s.Arrivals(nil)
	// Mean rate 50 rps over 10s.
	if n := len(got); n < 495 || n > 505 {
		t.Fatalf("ramp 0->100rps x 10s: %d arrivals, want ~500", n)
	}
	// The second half must carry more arrivals than the first.
	half := s.Duration / 2
	first := 0
	for _, a := range got {
		if a < half {
			first++
		}
	}
	if first*2 >= len(got) {
		t.Errorf("ramp front-loaded: %d of %d arrivals in first half", first, len(got))
	}
}

func TestDiurnalRate(t *testing.T) {
	s := Schedule{Pattern: Diurnal, BaseRPS: 10, PeakRPS: 90, Duration: 24 * time.Hour}
	if r := s.Rate(0); math.Abs(r-10) > 1e-9 {
		t.Errorf("trough rate = %v, want 10", r)
	}
	if r := s.Rate(12 * time.Hour); math.Abs(r-90) > 1e-9 {
		t.Errorf("peak rate = %v, want 90", r)
	}
	if r := s.OfferedRPS(); math.Abs(r-50) > 1e-9 {
		t.Errorf("mean rate = %v, want 50", r)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	s := Schedule{Pattern: Diurnal, BaseRPS: 5, PeakRPS: 40, Duration: time.Minute}
	a := s.Arrivals(rng.New(7).Split("arrivals"))
	b := s.Arrivals(rng.New(7).Split("arrivals"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different arrival schedules")
	}
	c := s.Arrivals(rng.New(8).Split("arrivals"))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical jittered schedules")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("sha1_hash=3, thumbnailer")
	if err != nil {
		t.Fatalf("ParseMix: %v", err)
	}
	want := Mix{
		{Workload: workload.Sha1Hash, Weight: 3},
		{Workload: workload.Thumbnailer, Weight: 1},
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("mix = %+v, want %+v", m, want)
	}
	if _, err := ParseMix("no_such_fn"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ParseMix("sha1_hash=-1"); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := ParseMix(""); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestMixPick(t *testing.T) {
	m, _ := ParseMix("sha1_hash=9,thumbnailer=1")
	if got := m.Pick(nil); got != workload.Sha1Hash {
		t.Errorf("nil-stream pick = %v, want heaviest sha1_hash", got)
	}
	stream := rng.New(3).Split("mix")
	counts := map[workload.ID]int{}
	for i := 0; i < 1000; i++ {
		counts[m.Pick(stream)]++
	}
	if counts[workload.Sha1Hash] < 800 {
		t.Errorf("weighted pick skew: %v", counts)
	}
	if counts[workload.Thumbnailer] == 0 {
		t.Error("light entry never picked")
	}
}

func TestRecorderReport(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 80; i++ {
		r.Begin()
		r.Record(OK, 100)
	}
	for i := 0; i < 15; i++ {
		r.Begin()
		r.Record(Shed, 2)
		r.RecordRetryAfter(500 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		r.Begin()
		r.Record(Errored, 50)
	}
	rep := r.Report(10, 10*time.Second)
	if rep.Requests != 100 || rep.OK != 80 || rep.Shed != 15 || rep.Errors != 5 {
		t.Fatalf("counts wrong: %+v", rep)
	}
	if math.Abs(rep.AchievedRPS-10) > 1e-9 || math.Abs(rep.GoodputRPS-8) > 1e-9 {
		t.Errorf("rates wrong: achieved %v goodput %v", rep.AchievedRPS, rep.GoodputRPS)
	}
	if math.Abs(rep.ShedRate-0.15) > 1e-9 {
		t.Errorf("shed rate = %v, want 0.15", rep.ShedRate)
	}
	if math.Abs(rep.MeanRetryAfterMS-500) > 1e-9 {
		t.Errorf("mean retry-after = %v, want 500", rep.MeanRetryAfterMS)
	}
	if rep.Latency.Count != 80 {
		t.Errorf("latency digest over %d requests, want served 80", rep.Latency.Count)
	}
	out := rep.Render()
	for _, want := range []string{"offered RPS", "shed (429)", "latency p99 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines; run with
// -race this is the skyload-recorder race test the issue calls for.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Begin()
				switch i % 3 {
				case 0:
					r.Record(OK, float64(i%200+1))
				case 1:
					r.Record(Shed, 1)
					r.RecordRetryAfter(time.Duration(i%100) * time.Millisecond)
				default:
					r.Record(Errored, 10)
				}
			}
		}(w)
	}
	wg.Wait()
	rep := r.Report(100, time.Minute)
	if want := uint64(workers * perWorker); rep.Requests != want {
		t.Fatalf("requests = %d, want %d", rep.Requests, want)
	}
	if rep.MaxInFlight < 1 || rep.MaxInFlight > workers {
		t.Errorf("max in-flight = %d, want within [1, %d]", rep.MaxInFlight, workers)
	}
}
