package sky

// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md §5
// for the experiment index). Benchmarks run the Reduced() experiment
// configurations so `go test -bench=.` finishes in minutes; cmd/skybench
// regenerates the full paper-scale output. Every benchmark reports the
// figure's headline quantity via b.ReportMetric, so bench output doubles as
// a compact reproduction summary.

import (
	"os"
	"strconv"
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/experiments"
	"skyfaas/internal/lint"
	"skyfaas/internal/workload"
)

// BenchmarkTable1Workloads regenerates Table 1: each workload's real
// implementation runs end to end at reference scale.
func BenchmarkTable1Workloads(b *testing.B) {
	for _, id := range workload.IDs() {
		id := id
		b.Run(id.String(), func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				out, err := workload.Run(id, workload.Input{Seed: uint64(i), TempDir: dir})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out.Bytes), "payload-bytes")
			}
		})
	}
}

// BenchmarkFig3SleepIntervalCost regenerates Fig. 3: sampling cost and
// unique-FI coverage across sleep intervals (EX-1's tuning sweep).
func BenchmarkFig3SleepIntervalCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX1(experiments.EX1Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		// The 250ms point: the paper's optimum.
		for _, pt := range res.Sweep {
			if pt.Sleep.Milliseconds() == 250 {
				b.ReportMetric(float64(pt.UniqueFIs), "uniqueFIs@250ms")
				b.ReportMetric(pt.CostUSD*100, "cents/poll@250ms")
			}
		}
	}
}

// BenchmarkFig4SaturationPolls regenerates Fig. 4: sequential polls until a
// zone saturates, validated by an independent second account.
func BenchmarkFig4SaturationPolls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX1(experiments.EX1Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.FirstAccount)), "polls-to-saturation")
		b.ReportMetric(float64(res.ObservedFIs), "unique-FIs")
		if len(res.SecondAccount) > 0 {
			b.ReportMetric(res.SecondAccount[0].FailFrac()*100, "2nd-acct-fail-%")
		}
	}
}

// BenchmarkFig2GlobalCharacterization regenerates Fig. 2: CPU distributions
// across regions of all three providers.
func BenchmarkFig2GlobalCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX2(experiments.EX2Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Regions)), "regions")
		b.ReportMetric(res.TotalCost*100, "total-cents")
	}
}

// BenchmarkFig5ProgressiveSampling regenerates Fig. 5: characterization
// error versus sampled FIs across zones, to the at-failure ground truth.
func BenchmarkFig5ProgressiveSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX3(experiments.EX3Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPollsTo95, "mean-polls-to-95%")
		b.ReportMetric(res.MaxSinglePollAPE, "max-1poll-APE%")
	}
}

// BenchmarkFig6PollsTo95 regenerates Fig. 6: sampling needed for 95%
// characterization accuracy across days and zones.
func BenchmarkFig6PollsTo95(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX4(experiments.EX4Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPollsTo95, "mean-polls-to-95%")
		b.ReportMetric(res.MeanPollsTo99, "mean-polls-to-99%")
	}
}

// BenchmarkFig7TemporalDegradation regenerates Fig. 7: characterization
// accuracy decay against the day-1 profile per zone class.
func BenchmarkFig7TemporalDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX4(experiments.EX4Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		maxAPE := func(az string) float64 {
			best := 0.0
			for _, r := range res.ByZone[az] {
				if r.APEVsDay1 > best {
					best = r.APEVsDay1
				}
			}
			return best
		}
		b.ReportMetric(maxAPE("us-west-1a"), "volatile-maxAPE%")
		b.ReportMetric(maxAPE("sa-east-1a"), "stable-maxAPE%")
	}
}

// BenchmarkFig8HourlyVariation regenerates Fig. 8: hourly distribution
// change of us-west-1b against the first hour.
func BenchmarkFig8HourlyVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX4(experiments.EX4Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.HourlyWithin10), "hours-within-10%")
		b.ReportMetric(float64(len(res.HourlyAPE)), "hours-sampled")
	}
}

// BenchmarkFig9WorkloadPerfByCPU regenerates Fig. 9: learned per-CPU
// runtime ratios (normalized to the 2.5 GHz Xeon).
func BenchmarkFig9WorkloadPerfByCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX5(experiments.EX5Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		norm := res.NormalizedPerf[workload.LogisticRegression]
		b.ReportMetric(norm[cpu.Xeon30], "logreg-3.0GHz-ratio")
		b.ReportMetric(norm[cpu.EPYC], "logreg-EPYC-ratio")
	}
}

// BenchmarkFig10ZipperRetry regenerates Fig. 10: zipper under retry-slow
// and focus-fastest on a fixed volatile zone.
func BenchmarkFig10ZipperRetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX5(experiments.EX5Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ZipperRetrySlow.Cumulative()*100, "retry-slow-savings-%")
		b.ReportMetric(res.ZipperFocusFastest.Cumulative()*100, "focus-savings-%")
		b.ReportMetric(res.ZipperFocusFastest.MaxRetryFrac()*100, "max-retried-%")
	}
}

// BenchmarkFig11RegionHopping regenerates Fig. 11: logistic regression
// under hybrid region hopping versus the fixed us-west-1b baseline.
func BenchmarkFig11RegionHopping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX5(experiments.EX5Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LogRegHybrid.Cumulative()*100, "hybrid-savings-%")
		b.ReportMetric(res.LogRegHybrid.MaxDaily()*100, "max-daily-%")
	}
}

// BenchmarkHeadlineHybridSavings regenerates the headline aggregate: average
// and best hybrid savings across workloads, plus sampling spend.
func BenchmarkHeadlineHybridSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX5(experiments.EX5Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgHybridSavings*100, "avg-savings-%")
		b.ReportMetric(res.BestSavings*100, "best-savings-%")
		b.ReportMetric(res.SamplingSpendUSD*100, "sampling-cents")
	}
}

// BenchmarkRetryLatencyTradeoff quantifies §4.6's stated trade-off: the
// retry method defers execution (a minimum 150 ms hold per round) to find
// faster instances, at a small added dollar cost — the paper reports ~$0.03
// of holds for a 1,000-invocation focus-fastest burst on us-west-1b.
func BenchmarkRetryLatencyTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRetryTradeoff(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RetriesPerCompletion, "retries/completion")
		b.ReportMetric(res.HoldCostUSD*100, "hold-cost-cents")
		b.ReportMetric(res.AddedLatencyMS, "added-latency-ms")
	}
}

// BenchmarkAblationFanout compares the paper's recursive-tree fan-out with
// flat client fan-out at equal request counts (DESIGN.md §6): the tree
// reaches the same coverage with an order of magnitude fewer client-held
// concurrent connections.
func BenchmarkAblationFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationFanout(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TreeUniqueFIs), "tree-uniqueFIs")
		b.ReportMetric(float64(res.FlatUniqueFIs), "flat-uniqueFIs")
		b.ReportMetric(float64(res.TreeClientCalls), "tree-client-calls")
		b.ReportMetric(float64(res.FlatClientCalls), "flat-client-calls")
	}
}

// BenchmarkAblationPassiveCharacterization compares routing on polled
// characterizations against zero-cost passive ones built from the traffic
// itself (the paper's §4.6 future work, implemented).
func BenchmarkAblationPassiveCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationPassive(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PolledSavings*100, "polled-savings-%")
		b.ReportMetric(res.PassiveSavings*100, "passive-savings-%")
		b.ReportMetric(res.PolledSamplingUSD*100, "polled-sampling-cents")
	}
}

// BenchmarkAblationStaleProfile compares routing with fresh daily
// characterizations against a frozen day-1 profile (DESIGN.md §6) on a
// volatile zone pair.
func BenchmarkAblationStaleProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationStaleProfile(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FreshSavings*100, "fresh-savings-%")
		b.ReportMetric(res.StaleSavings*100, "stale-savings-%")
	}
}

// BenchmarkEX8Frontier regenerates EX-8's overload frontier at benchmark
// scale: the 2x-capacity cell's shed rate and served p99 for the admission
// arm, against the retry-storm arm's inflated p99 and hard-error rate.
func BenchmarkEX8Frontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEX8(experiments.EX8Config{Seed: uint64(i)}.Reduced())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CapacityRPS, "capacity-rps")
		if c, ok := res.Cell(experiments.EX8Admission, 2); ok {
			b.ReportMetric(c.Report.ShedRate*100, "gated-shed-%@2x")
			b.ReportMetric(c.Report.Latency.P99, "gated-p99-ms@2x")
			b.ReportMetric(c.Report.GoodputRPS, "gated-goodput-rps@2x")
		}
		if c, ok := res.Cell(experiments.EX8NoAdmission, 2); ok {
			b.ReportMetric(c.Report.Latency.P99, "naive-p99-ms@2x")
			b.ReportMetric(c.Report.ErrorRate*100, "naive-errors-%@2x")
		}
	}
}

// BenchmarkShardedMesh drives the EX-9 load — the full 41-region /
// ~700-deployment default mesh under open-loop invocation chains in every
// zone — through the single-queue and the 4-shard engines. Each iteration
// simulates a fixed invocation count (SKY_MESH_INVOCATIONS overrides the
// 40,000 default; the full-scale BENCH_mesh.json record uses 10,000,000)
// and the headline metric is wall-clock invocations per second. On a
// single-core host (GOMAXPROCS=1) the shards serialize, so sharded
// throughput tracks the engine's synchronization overhead rather than its
// parallel speedup; the speedup target needs >= 4 cores.
func BenchmarkShardedMesh(b *testing.B) {
	invocations := 40000
	if s := os.Getenv("SKY_MESH_INVOCATIONS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			b.Fatalf("bad SKY_MESH_INVOCATIONS %q", s)
		}
		invocations = v
	}
	for _, arm := range []struct {
		name   string
		shards int
	}{
		{"single", 1},
		{"sharded4", 4},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var inv int
			var wall time.Duration
			var sum uint64
			for i := 0; i < b.N; i++ {
				st, err := experiments.RunMeshLoad(experiments.MeshLoadConfig{
					Seed:        5,
					Shards:      arm.shards,
					Invocations: invocations,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum != 0 && st.Checksum != sum {
					b.Fatalf("nondeterministic mesh load: %016x then %016x", sum, st.Checksum)
				}
				sum = st.Checksum
				inv += st.Invocations
				wall += st.Wall
			}
			b.ReportMetric(float64(inv)/wall.Seconds(), "inv/s")
			b.ReportMetric(float64(invocations), "inv/iter")
		})
	}
}

// BenchmarkSkylintModule measures the static-analysis pass itself: a full
// module load (parse + type-check) followed by every registered rule,
// exactly what `make lint` pays on each run. The wall-time baseline lives
// in BENCH_route.json so analyzer cost rides the same perf trajectory as
// the code it guards; the findings metric is pinned at 0 — the gate
// doubles as a repo-is-lint-clean check. Deliberately last in this file:
// one pass allocates hundreds of MB of transient type-check state, and
// running it before the mesh benchmark in the same process skews that
// benchmark's GC behavior past the gate's tolerance.
func BenchmarkSkylintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mod, err := lint.Load(".")
		if err != nil {
			b.Fatal(err)
		}
		findings := lint.Run(mod, lint.Analyzers())
		if len(findings) > 0 {
			b.Logf("first finding: %s", findings[0])
		}
		b.ReportMetric(float64(len(findings)), "findings")
		b.ReportMetric(float64(len(lint.Analyzers())), "rules")
	}
}
