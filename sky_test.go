package sky

import (
	"testing"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

func TestDefaultCatalogExposed(t *testing.T) {
	catalog := DefaultCatalog()
	if len(catalog) != 41 {
		t.Fatalf("catalog regions = %d, want 41", len(catalog))
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if got := len(Workloads()); got != 12 {
		t.Fatalf("workloads = %d, want 12 (Table 1)", got)
	}
}

func TestStrategyAliasesExposed(t *testing.T) {
	// Every routing strategy is reachable through the facade.
	strategies := []Strategy{
		Baseline{AZ: "z"}, Regional{}, RetrySlow{AZ: "z"},
		FocusFastest{AZ: "z"}, Hybrid{}, LatencyBound{}, CostAware{},
	}
	names := map[string]bool{}
	for _, s := range strategies {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
		names[s.Name()] = true
	}
	if len(names) != len(strategies) {
		t.Errorf("duplicate strategy names: %v", names)
	}
}

func TestAPEExposed(t *testing.T) {
	a := Dist{cpu.Xeon25: 1}
	b := Dist{cpu.Xeon30: 1}
	if got := APE(a, b); got != 100 {
		t.Fatalf("APE = %v", got)
	}
}

// TestPublicQuickstart exercises the README quickstart path end to end on
// a scoped-down world.
func TestPublicQuickstart(t *testing.T) {
	catalog := []RegionSpec{{
		Provider: DefaultCatalog()[0].Provider, // AWS
		Name:     "demo-region",
		Loc:      geo.Coord{Lat: 40, Lon: -80},
		AZs: []AZSpec{
			{Name: "demo-a", PoolFIs: 2048,
				Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.6, cpu.Xeon30: 0.4}},
			{Name: "demo-b", PoolFIs: 2048,
				Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.7, cpu.EPYC: 0.3}},
		},
	}}
	rt, err := New(Config{
		Seed:    7,
		Catalog: catalog,
		SamplerCfg: SamplerConfig{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	azs := []string{"demo-a", "demo-b"}
	err = rt.Do(func(p *sim.Proc) error {
		if _, err := rt.Refresh(p, azs, 3); err != nil {
			return err
		}
		if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.Zipper}, azs, 450); err != nil {
			return err
		}
		res, err := rt.Run(p, BurstSpec{
			Strategy:   Hybrid{},
			Workload:   workload.Zipper,
			N:          100,
			Candidates: azs,
		})
		if err != nil {
			return err
		}
		if res.Completed != 100 {
			t.Errorf("completed = %d", res.Completed)
		}
		if res.AZ != "demo-a" {
			t.Errorf("hybrid picked %s; demo-a has the 3.0GHz pool", res.AZ)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicChaosQuickstart exercises the fault-injection and resilient
// routing surface through the facade: arm a throttle storm via the
// injector, then route a burst with the default resilience posture and
// watch it fail over to the healthy zone.
func TestPublicChaosQuickstart(t *testing.T) {
	catalog := []RegionSpec{{
		Provider: DefaultCatalog()[0].Provider, // AWS
		Name:     "demo-region",
		Loc:      geo.Coord{Lat: 40, Lon: -80},
		AZs: []AZSpec{
			{Name: "demo-a", PoolFIs: 2048,
				Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.6, cpu.Xeon30: 0.4}},
			{Name: "demo-b", PoolFIs: 2048,
				Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.7, cpu.EPYC: 0.3}},
		},
	}}
	rt, err := New(Config{
		Seed:    7,
		Catalog: catalog,
		SamplerCfg: SamplerConfig{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	strat, err := BuildStrategy(StrategySpec{Name: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	if len(StrategyNames()) != 7 || len(FaultKinds()) != 5 || len(ScenarioNames()) != 3 {
		t.Fatalf("registry sizes: strategies=%d kinds=%d scenarios=%d",
			len(StrategyNames()), len(FaultKinds()), len(ScenarioNames()))
	}
	azs := []string{"demo-a", "demo-b"}
	err = rt.Do(func(p *sim.Proc) error {
		if _, err := rt.Refresh(p, azs, 3); err != nil {
			return err
		}
		if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.Zipper}, azs, 450); err != nil {
			return err
		}
		sc, ok := ScenarioByName("throttle-storm", "demo-a")
		if !ok {
			t.Error("throttle-storm scenario missing")
			return nil
		}
		if _, err := rt.Chaos().InjectScenario(sc); err != nil {
			return err
		}
		res, err := rt.Run(p, BurstSpec{
			Strategy:   strat,
			Workload:   workload.Zipper,
			N:          100,
			Candidates: azs,
			Resilience: DefaultResilience(),
		})
		if err != nil {
			return err
		}
		if res.SuccessRate() < 0.95 {
			t.Errorf("resilient success rate = %.2f under storm", res.SuccessRate())
		}
		if res.Failovers == 0 {
			t.Error("no failover away from the stormed zone")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
